package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"nonmask/internal/obs"
	"nonmask/internal/protocols/registry"
)

// The batch subsystem turns the service's one-job API into a sweep
// engine: POST /v1/batches accepts either an explicit spec list or a
// declarative parameter sweep, expands it server-side against the
// registry's advertised bounds, and fans the members out through the
// existing queue under a per-batch concurrency window, so one batch can
// never monopolize admission. Aggregate progress, one long-poll over the
// whole set, and batch cancel ride on the same job machinery single
// submissions use — members hit the cache, coalesce, and drain exactly
// like standalone jobs.

const (
	// maxBatchJobs bounds one batch's expansion.
	maxBatchJobs = 256
	// maxBatches bounds retained batch records (oldest terminal evicted).
	maxBatches = 512
	// batchRetryDelay is the backoff between member-admission retries when
	// the queue pushes back with 429.
	batchRetryDelay = 50 * time.Millisecond
)

// RangeSpec is one swept parameter's inclusive range: From, From+Step, …
// up to To. Step 0 means 1.
type RangeSpec struct {
	From int `json:"from"`
	To   int `json:"to"`
	Step int `json:"step,omitempty"`
}

// values expands the range, capped so a typo cannot allocate unbounded.
func (r RangeSpec) values(name string) ([]int, error) {
	step := r.Step
	if step == 0 {
		step = 1
	}
	if step < 0 {
		return nil, fmt.Errorf("sweep range %s: negative step %d", name, step)
	}
	if r.To < r.From {
		return nil, fmt.Errorf("sweep range %s: to=%d below from=%d", name, r.To, r.From)
	}
	n := (r.To-r.From)/step + 1
	if n > maxBatchJobs {
		return nil, fmt.Errorf("sweep range %s: %d points exceeds the %d-job batch cap", name, n, maxBatchJobs)
	}
	out := make([]int, 0, n)
	for v := r.From; v <= r.To; v += step {
		out = append(out, v)
	}
	return out, nil
}

// SweepSpec is the declarative form of a batch: one protocol, fixed
// params, and per-parameter ranges expanded server-side into the
// cartesian product of points. Sweepable parameters are the integer ones:
// "n", "k", and "seed".
type SweepSpec struct {
	// Protocol names the catalog entry every point instantiates.
	Protocol string `json:"protocol"`
	// Params fixes the non-swept parameters (tree shape, graph, …).
	Params registry.Params `json:"params,omitempty"`
	// Ranges maps parameter name → range; the expansion is the cartesian
	// product across ranges, every point validated against the registry's
	// advertised bounds before anything touches the queue.
	Ranges map[string]RangeSpec `json:"ranges"`
	// Options applies to every member job.
	Options JobOptions `json:"options,omitempty"`
}

// BatchSpec is the submission payload of POST /v1/batches. Exactly one of
// Specs (explicit member list) or Sweep (declarative expansion) must be
// set.
type BatchSpec struct {
	// Specs lists members explicitly.
	Specs []JobSpec `json:"specs,omitempty"`
	// Sweep declares members as a parameter sweep.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Concurrency caps how many members of this batch are in the queue or
	// running at once (0 = the server's executor count). The window keeps
	// a big sweep from starving interactive submissions.
	Concurrency int `json:"concurrency,omitempty"`
}

// BatchState enumerates a batch's lifecycle.
type BatchState string

// Batch lifecycle states. A batch is "done" when every member reached a
// terminal state (failed members included — the counts carry the detail),
// and "canceled" when it was canceled or the server began draining before
// every member was admitted.
const (
	BatchRunning  BatchState = "running"
	BatchDone     BatchState = "done"
	BatchCanceled BatchState = "canceled"
)

func (s BatchState) terminal() bool { return s == BatchDone || s == BatchCanceled }

// BatchCounts is the aggregate progress of a batch's members.
type BatchCounts struct {
	// Total is the expanded member count.
	Total int `json:"total"`
	// Pending counts members not yet admitted (waiting on the batch's
	// concurrency window or on queue admission).
	Pending int `json:"pending"`
	// Queued / Running / Done / Failed / Canceled count admitted members
	// by job state.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// Cached counts done members served from the result cache.
	Cached int `json:"cached"`
	// Coalesced counts members that attached to an identical in-flight job.
	Coalesced int `json:"coalesced"`
}

// BatchJobRef is one member's summary row inside a BatchStatus.
type BatchJobRef struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Program string   `json:"program"`
	Cached  bool     `json:"cached,omitempty"`
	Verdict string   `json:"verdict,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// CurvePoint is one member's contribution to a batch's tolerance curve:
// the instance parameters paired with its quantitative stabilization
// metrics. A K-sweep over a token ring, for example, yields one point per
// K value — the curve of recovery time against counter-domain size.
type CurvePoint struct {
	// Program is the member's instance-qualified program name.
	Program string `json:"program"`
	// N, K, and Seed are the member's normalized sweepable parameters.
	N    int   `json:"n,omitempty"`
	K    int   `json:"k,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// MaxDistance is the deepest fault in the member's distance profile.
	MaxDistance int `json:"max_distance"`
	// WorstMeasured / WorstSteps are the exact worst-case stabilization
	// time (see ToleranceMetrics).
	WorstMeasured bool `json:"worst_measured"`
	WorstSteps    int  `json:"worst_steps"`
	// ExpectedMeasured / ExpectedSteps are the expected stabilization time
	// under the uniform-random daemon.
	ExpectedMeasured bool    `json:"expected_measured"`
	ExpectedSteps    float64 `json:"expected_steps"`
}

// BatchStatus is the wire form of a batch.
type BatchStatus struct {
	// ID addresses the batch in GET /v1/batches/{id}.
	ID string `json:"id"`
	// State is the batch lifecycle state.
	State BatchState `json:"state"`
	// Counts is the aggregate member progress.
	Counts BatchCounts `json:"counts"`
	// Jobs lists admitted members in admission order.
	Jobs []BatchJobRef `json:"jobs"`
	// Curve aggregates the members' tolerance metrics into one curve, in
	// admission (sweep-expansion) order. Present only when members ran
	// with the "metrics" analysis selected; members still in flight,
	// failed, or without metrics contribute no point.
	Curve []CurvePoint `json:"curve,omitempty"`
	// SubmittedAt stamps admission; FinishedAt stamps the terminal
	// transition (zero until then).
	SubmittedAt time.Time `json:"submitted_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// batch is the server-side record of one batch submission.
type batch struct {
	id          string
	concurrency int
	specs       []*compiled

	mu        sync.Mutex
	state     BatchState
	jobs      []*job
	canceled  bool
	submitted time.Time
	finished  time.Time
	// terminalMembers counts members that reached a terminal state; it
	// drives the batch stream's aggregate progress events.
	terminalMembers int

	// events is the batch's bus stream (registerBatchLocked attaches it):
	// batch_member completions, aggregate progress, and the terminal
	// batch event.
	events *obs.Stream

	// cancelCh is closed by cancel to wake the runner out of window waits
	// and admission backoffs; done is closed on the terminal transition
	// and is what long-polls wait on.
	cancelCh chan struct{}
	done     chan struct{}
}

func newBatch(id string, specs []*compiled, concurrency int, now time.Time) *batch {
	return &batch{
		id:          id,
		concurrency: concurrency,
		specs:       specs,
		state:       BatchRunning,
		submitted:   now,
		cancelCh:    make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// status snapshots the wire form. Member job locks nest under b.mu
// (nothing takes them in the other order).
func (b *batch) status() BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BatchStatus{
		ID:          b.id,
		State:       b.state,
		SubmittedAt: b.submitted,
		FinishedAt:  b.finished,
		Jobs:        make([]BatchJobRef, 0, len(b.jobs)),
	}
	st.Counts.Total = len(b.specs)
	st.Counts.Pending = len(b.specs) - len(b.jobs)
	for _, j := range b.jobs {
		js := j.status()
		ref := BatchJobRef{ID: js.ID, State: js.State, Program: js.Program,
			Cached: js.Cached, Error: js.Error}
		if js.Result != nil {
			ref.Verdict = js.Result.Verdict
			if p, ok := curvePoint(j, js); ok {
				st.Curve = append(st.Curve, p)
			}
		}
		st.Jobs = append(st.Jobs, ref)
		if js.Coalesced {
			st.Counts.Coalesced++
		}
		switch js.State {
		case StateQueued:
			st.Counts.Queued++
		case StateRunning:
			st.Counts.Running++
		case StateDone:
			st.Counts.Done++
			if js.Cached {
				st.Counts.Cached++
			}
		case StateFailed:
			st.Counts.Failed++
		case StateCanceled:
			st.Counts.Canceled++
		}
	}
	return st
}

// curvePoint builds a member's tolerance-curve contribution, when it ran
// with metrics and produced one. Shared by the status aggregation and the
// batch event stream's running curve updates.
func curvePoint(j *job, js JobStatus) (CurvePoint, bool) {
	if js.Result == nil || js.Result.Metrics == nil {
		return CurvePoint{}, false
	}
	m := js.Result.Metrics
	return CurvePoint{
		Program:          js.Program,
		N:                j.c.params.N,
		K:                j.c.params.K,
		Seed:             j.c.params.Seed,
		MaxDistance:      m.MaxDistance,
		WorstMeasured:    m.WorstMeasured,
		WorstSteps:       m.WorstSteps,
		ExpectedMeasured: m.ExpectedMeasured,
		ExpectedSteps:    m.ExpectedSteps,
	}, true
}

// addJob records an admitted member.
func (b *batch) addJob(j *job) {
	b.mu.Lock()
	b.jobs = append(b.jobs, j)
	b.mu.Unlock()
}

// isCanceled reports a cancel request.
func (b *batch) isCanceled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.canceled
}

// requestCancel marks the batch canceled (idempotent) and returns the
// admitted members to cancel. The runner stops admitting via cancelCh.
func (b *batch) requestCancel() []*job {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.canceled || b.state.terminal() {
		return nil
	}
	b.canceled = true
	close(b.cancelCh)
	return append([]*job(nil), b.jobs...)
}

// finish applies the terminal transition once every admitted member is
// terminal: "done" when the whole expansion was admitted and not
// canceled, "canceled" otherwise.
func (b *batch) finish(now time.Time) BatchState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state.terminal() {
		return b.state
	}
	if b.canceled || len(b.jobs) < len(b.specs) {
		b.state = BatchCanceled
	} else {
		b.state = BatchDone
	}
	b.finished = now
	b.events.Publish(obs.Event{Type: obs.EventBatch, State: string(b.state),
		Done: int64(b.terminalMembers), Total: int64(len(b.specs))})
	close(b.done)
	return b.state
}

// sweepRangeOrder fixes the expansion order of swept parameters so a
// given sweep always yields the same member sequence (and therefore the
// same member→params pairing in the status listing).
var sweepRangeOrder = []string{"n", "k", "seed"}

// expandSweep turns a declarative sweep into concrete job specs: the
// cartesian product of the ranges over the fixed params, every point
// validated against the registry's advertised bounds.
func expandSweep(sw *SweepSpec) ([]JobSpec, error) {
	if sw.Protocol == "" {
		return nil, fmt.Errorf("sweep sets no protocol")
	}
	if _, ok := registry.Lookup(sw.Protocol); !ok {
		return nil, fmt.Errorf("unknown protocol %q (known: %v)", sw.Protocol, registry.Names())
	}
	if len(sw.Ranges) == 0 {
		return nil, fmt.Errorf("sweep declares no ranges (use specs for a single job)")
	}
	for name := range sw.Ranges {
		if name != "n" && name != "k" && name != "seed" {
			return nil, fmt.Errorf("unknown sweep parameter %q (sweepable: n, k, seed)", name)
		}
	}
	points := []registry.Params{sw.Params}
	for _, name := range sweepRangeOrder {
		r, ok := sw.Ranges[name]
		if !ok {
			continue
		}
		vals, err := r.values(name)
		if err != nil {
			return nil, err
		}
		next := make([]registry.Params, 0, len(points)*len(vals))
		for _, p := range points {
			for _, v := range vals {
				q := p
				switch name {
				case "n":
					q.N = v
				case "k":
					q.K = v
				case "seed":
					q.Seed = int64(v)
				}
				next = append(next, q)
			}
		}
		if len(next) > maxBatchJobs {
			return nil, fmt.Errorf("sweep expands to %d jobs, cap is %d", len(next), maxBatchJobs)
		}
		points = next
	}
	specs := make([]JobSpec, 0, len(points))
	for _, p := range points {
		// Reject out-of-range points here, before anything is admitted, so
		// the whole sweep fails atomically with the advertised bounds in
		// the error instead of half-running.
		if err := registry.Validate(sw.Protocol, p); err != nil {
			return nil, err
		}
		specs = append(specs, JobSpec{Protocol: sw.Protocol, Params: p, Options: sw.Options})
	}
	return specs, nil
}

// expandBatch resolves a batch spec into compiled members plus the
// effective concurrency window.
func expandBatch(spec BatchSpec, cfg Config) ([]*compiled, int, error) {
	var (
		jobSpecs []JobSpec
		err      error
	)
	switch {
	case len(spec.Specs) > 0 && spec.Sweep != nil:
		return nil, 0, fmt.Errorf("batch sets both specs and sweep; pick one")
	case spec.Sweep != nil:
		jobSpecs, err = expandSweep(spec.Sweep)
		if err != nil {
			return nil, 0, err
		}
	case len(spec.Specs) > 0:
		jobSpecs = spec.Specs
	default:
		return nil, 0, fmt.Errorf("batch sets neither specs nor sweep")
	}
	if len(jobSpecs) > maxBatchJobs {
		return nil, 0, fmt.Errorf("batch lists %d jobs, cap is %d", len(jobSpecs), maxBatchJobs)
	}
	compiledSpecs := make([]*compiled, 0, len(jobSpecs))
	for i, js := range jobSpecs {
		c, cerr := compileSpec(js, cfg)
		if cerr != nil {
			return nil, 0, fmt.Errorf("batch member %d: %w", i, cerr)
		}
		compiledSpecs = append(compiledSpecs, c)
	}
	conc := spec.Concurrency
	if conc <= 0 {
		conc = cfg.Executors
	}
	if conc < 1 {
		conc = 1
	}
	if conc > maxBatchJobs {
		conc = maxBatchJobs
	}
	return compiledSpecs, conc, nil
}

// SubmitBatch validates and expands an untenanted batch — the
// single-node path and the tests' front door.
func (s *Server) SubmitBatch(spec BatchSpec) (BatchStatus, error) {
	return s.SubmitBatchAs(spec, "")
}

// SubmitBatchAs validates and expands a batch on behalf of tenant,
// registers its record, and starts the fan-out runner. Validation is
// all-or-nothing and happens before anything is queued. In a cluster,
// members whose fingerprints other nodes own run there (shadow records
// mirror the remote runs locally), so one sweep spreads across the
// whole cluster.
func (s *Server) SubmitBatchAs(spec BatchSpec, tenant string) (BatchStatus, error) {
	specs, conc, err := expandBatch(spec, s.cfg)
	if err != nil {
		s.metrics.Rejected.Add(1)
		return BatchStatus{}, &submitError{code: http.StatusBadRequest, msg: err.Error(), tenant: tenant}
	}
	for _, c := range specs {
		c.tenant = tenant
	}
	now := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.Rejected.Add(1)
		return BatchStatus{}, &submitError{code: http.StatusServiceUnavailable, msg: "server is draining", tenant: tenant}
	}
	s.batchSeq++
	b := newBatch(s.prefixID(fmt.Sprintf("b-%08d", s.batchSeq)), specs, conc, now)
	s.registerBatchLocked(b)
	s.batchWG.Add(1)
	s.mu.Unlock()
	s.metrics.BatchesSubmitted.Add(1)
	s.metrics.BatchesInFlight.Add(1)
	s.log.Info("batch queued", "batch", b.id, "jobs", len(specs), "concurrency", conc)
	go s.runBatch(b)
	return b.status(), nil
}

// registerBatchLocked records a batch, attaches its event stream
// (publishing the opening "running" event with the expansion size), and
// evicts the oldest terminal records past the retention bound (s.mu held).
func (s *Server) registerBatchLocked(b *batch) {
	s.batches[b.id] = b
	s.batchOrder = append(s.batchOrder, b.id)
	b.events = s.bus.Stream(b.id)
	b.events.Publish(obs.Event{Type: obs.EventBatch, State: string(BatchRunning),
		Total: int64(len(b.specs))})
	for len(s.batches) > maxBatches {
		evicted := false
		for i, id := range s.batchOrder {
			bb, ok := s.batches[id]
			if !ok {
				s.batchOrder = append(s.batchOrder[:i], s.batchOrder[i+1:]...)
				evicted = true
				break
			}
			bb.mu.Lock()
			terminal := bb.state.terminal()
			bb.mu.Unlock()
			if terminal {
				delete(s.batches, id)
				s.bus.Remove(id)
				s.batchOrder = append(s.batchOrder[:i], s.batchOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything live; let the map grow rather than drop state
		}
	}
}

// runBatch fans a batch's members out through the shared queue. The
// concurrency window (sem) holds one slot per member from admission to
// terminal state; 429 pushback retries with a backoff, a drain or cancel
// stops admission, and the runner finishes the batch once every admitted
// member is terminal.
func (s *Server) runBatch(b *batch) {
	defer s.batchWG.Done()
	sem := make(chan struct{}, b.concurrency)
	// memberWG tracks the per-member watcher goroutines, which publish
	// each member's completion on the batch stream. finish waits on it so
	// the terminal batch event is strictly the stream's last.
	var memberWG sync.WaitGroup
admission:
	for _, c := range b.specs {
		select {
		case sem <- struct{}{}:
		case <-b.cancelCh:
			break admission
		}
		for {
			j, err := s.admitMember(c)
			if err == nil {
				b.addJob(j)
				s.metrics.BatchJobs.Add(1)
				memberWG.Add(1)
				go func(j *job) {
					defer memberWG.Done()
					<-j.done
					b.publishMember(j)
					<-sem
				}(j)
				break
			}
			if se, ok := err.(*submitError); ok && se.code == http.StatusTooManyRequests {
				// Admission control pushed back: the queue is full of other
				// work. Wait our turn instead of failing the batch.
				select {
				case <-time.After(batchRetryDelay):
					continue
				case <-b.cancelCh:
					break admission
				}
			}
			// Draining (503) or an unexpected admission failure: stop
			// admitting; the batch ends canceled with the members it has.
			s.log.Warn("batch admission stopped", "batch", b.id, "error", err)
			break admission
		}
	}
	// Wait for every admitted member to reach a terminal state.
	b.mu.Lock()
	admitted := append([]*job(nil), b.jobs...)
	b.mu.Unlock()
	for _, j := range admitted {
		<-j.done
	}
	memberWG.Wait()
	state := b.finish(time.Now())
	s.metrics.BatchesInFlight.Add(-1)
	if state == BatchDone {
		s.metrics.BatchesCompleted.Add(1)
	} else {
		s.metrics.BatchesCanceled.Add(1)
	}
	s.log.Info("batch "+string(state), "batch", b.id,
		"admitted", len(admitted), "of", len(b.specs))
}

// admitMember routes one batch member: local admission for fingerprints
// this node owns (or already has cached), a shadow record mirroring a
// remote run for member keys a peer owns. That spread is what makes a
// sweep a cluster-wide fan-out instead of one node's workload.
func (s *Server) admitMember(c *compiled) (*job, error) {
	if rt := s.cfg.Router; rt != nil {
		if node, local := rt.Owner(c.key); !local {
			if hit, _ := s.cache.get(c.key); hit == nil {
				return s.admitShadow(c, node)
			}
		}
	}
	return s.admit(c)
}

// admitShadow registers a local shadow record for a batch member whose
// fingerprint a peer owns and mirrors the remote run's terminal state
// onto it. The shadow occupies the batch's concurrency window (bounding
// remote fan-out) but no local queue slot or executor; canceling it
// abandons the wait without touching the remote job. Quota is charged
// on the node that runs the member, like any forwarded submission.
func (s *Server) admitShadow(c *compiled, node string) (*job, error) {
	now := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.metrics.Rejected.Add(1)
		return nil, &submitError{code: http.StatusServiceUnavailable, msg: "server is draining", tenant: c.tenant}
	}
	j := s.admitLocked(c, now)
	s.mu.Unlock()
	s.metrics.Submitted.Add(1)
	s.metrics.Forwarded.Add(1)
	s.log.Info("batch member forwarded", "job", j.id, "owner", node, "key", c.key)
	go func() {
		ctx, cancel := context.WithCancel(s.baseCtx)
		defer cancel()
		go func() {
			// A local cancel (batch cancel, shutdown) abandons the wait.
			<-j.done
			cancel()
		}()
		st, err := s.cfg.Router.RunRemote(ctx, node, c.tenant, c.spec)
		now := time.Now()
		switch {
		case err != nil:
			j.transition(StateFailed, nil, fmt.Errorf("remote run on %s: %w", node, err), now)
		case st.State == StateDone:
			j.mu.Lock()
			j.cached = st.Cached
			j.mu.Unlock()
			j.transition(StateDone, st.Result, nil, now)
		case st.State == StateCanceled:
			j.transition(StateCanceled, nil, fmt.Errorf("canceled on %s", node), now)
		default:
			msg := st.Error
			if msg == "" {
				msg = "remote job ended " + string(st.State)
			}
			j.transition(StateFailed, nil, fmt.Errorf("remote run on %s: %s", node, msg), now)
		}
	}()
	return j, nil
}

// publishMember streams one member's terminal state onto the batch's
// event feed: a batch_member event (carrying the member's curve point as
// Data when metrics produced one) followed by an aggregate progress
// event, so a watcher sees the tolerance curve grow point by point.
func (b *batch) publishMember(j *job) {
	js := j.status()
	ev := obs.Event{Type: obs.EventBatchMember, Member: js.ID, State: string(js.State)}
	switch {
	case js.Error != "":
		ev.Detail = js.Error
	case js.Result != nil:
		ev.Detail = js.Result.Verdict
	}
	if p, ok := curvePoint(j, js); ok {
		if data, err := json.Marshal(p); err == nil {
			ev.Data = data
		}
	}
	b.mu.Lock()
	b.terminalMembers++
	done := b.terminalMembers
	b.mu.Unlock()
	b.events.Publish(ev)
	b.events.Publish(obs.Event{Type: obs.EventProgress,
		Done: int64(done), Total: int64(len(b.specs))})
}

// Batch returns a batch's status by id.
func (s *Server) Batch(id string) (BatchStatus, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return BatchStatus{}, false
	}
	return b.status(), true
}

// WaitBatch blocks until every member of the batch is terminal, the wait
// elapses, or ctx is done — one long-poll over the whole set.
func (s *Server) WaitBatch(ctx context.Context, id string, wait time.Duration) (BatchStatus, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return BatchStatus{}, false
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-b.done:
		case <-t.C:
		case <-ctx.Done():
		}
	}
	return b.status(), true
}

// CancelBatch stops admitting new members and cancels the queued and
// running ones. Terminal batches are left untouched.
func (s *Server) CancelBatch(id string) (BatchStatus, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return BatchStatus{}, false
	}
	now := time.Now()
	for _, j := range b.requestCancel() {
		j.requestCancel(now)
	}
	s.log.Info("batch cancel requested", "batch", b.id)
	return b.status(), true
}
