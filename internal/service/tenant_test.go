package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func writeTokensFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tokens")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadTenantsFile(t *testing.T) {
	path := writeTokensFile(t, `
# ops gets everything; two tokens share the limits and live state
tok-alice alice quota=2 rate=10 burst=3
tok-alice2 alice quota=2 rate=10 burst=3
tok-bob bob

tok-carol carol rate=0.5
`)
	ts, err := LoadTenantsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Names(); len(got) != 3 || got[0] != "alice" || got[1] != "bob" || got[2] != "carol" {
		t.Fatalf("names = %v", got)
	}
	a1, ok1 := ts.Lookup("tok-alice")
	a2, ok2 := ts.Lookup("tok-alice2")
	if !ok1 || !ok2 || a1 != a2 {
		t.Fatal("alice's two tokens must share one tenant record")
	}
	if lim := a1.Limits(); lim.Quota != 2 || lim.Rate != 10 || lim.Burst != 3 {
		t.Fatalf("alice limits = %+v", lim)
	}
	if c, _ := ts.Lookup("tok-carol"); c.Limits().Burst != 1 {
		// burst defaults to ceil(rate), floored at 1
		t.Fatalf("carol burst = %d, want 1", c.Limits().Burst)
	}
	if _, ok := ts.Lookup("tok-nobody"); ok {
		t.Fatal("unknown token resolved")
	}

	for name, bad := range map[string]string{
		"missing-tenant": "lonely-token",
		"dup-token":      "tok tenant1\ntok tenant2",
		"conflict":       "t1 team quota=1\nt2 team quota=9",
		"reserved":       "tok _cluster",
		"bad-option":     "tok tenant speed=11",
		"bad-quota":      "tok tenant quota=-1",
	} {
		if _, err := LoadTenantsFile(writeTokensFile(t, bad)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestAuthRejectsBadToken covers the 401 path and the unauthenticated
// probe exemptions once a tokens file is loaded.
func TestAuthRejectsBadToken(t *testing.T) {
	ts := NewTenants()
	if err := ts.Add("good-token", "alice", TenantLimits{}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Tenants: ts})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	get := func(path, token string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", path, nil)
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	if rec := get("/v1/jobs", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("missing token: %d, want 401", rec.Code)
	}
	if rec := get("/v1/jobs", "wrong"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("bad token: %d, want 401", rec.Code)
	}
	if rec := get("/v1/jobs", "good-token"); rec.Code != http.StatusOK {
		t.Fatalf("good token: %d, want 200", rec.Code)
	}
	// Probes and scrapes stay open: load balancers and Prometheus carry
	// no tenant tokens.
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		if rec := get(path, ""); rec.Code != http.StatusOK {
			t.Fatalf("%s unauthenticated: %d, want 200", path, rec.Code)
		}
	}
	if got := s.metrics.AuthFailures.Load(); got != 2 {
		t.Fatalf("auth failures = %d, want 2", got)
	}
}

// TestRateLimitReturns429WithTenantHeader exhausts a tenant's token
// bucket over HTTP and checks the 429 names the tenant in
// X-CSServed-Tenant — the header operators alert on.
func TestRateLimitReturns429WithTenantHeader(t *testing.T) {
	ts := NewTenants()
	// burst=1, negligible refill: the second submission must bounce.
	if err := ts.Add("tok", "alice", TenantLimits{Rate: 0.0001, Burst: 1}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Tenants: ts, Executors: -1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	submit := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/jobs",
			strings.NewReader(`{"protocol":"tokenring-ring","params":{"n":3,"k":5}}`))
		req.Header.Set("Authorization", "Bearer tok")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	if rec := submit(); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", rec.Code, rec.Body)
	}
	rec := submit()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit: %d, want 429", rec.Code)
	}
	if got := rec.Header().Get(TenantHeader); got != "alice" {
		t.Fatalf("%s = %q, want alice", TenantHeader, got)
	}
	if got := s.metrics.RateLimited.Load(); got != 1 {
		t.Fatalf("rate limited = %d, want 1", got)
	}
}

// TestQuotaBoundsInFlightJobs exhausts a tenant's in-flight quota, then
// frees a slot by canceling and checks admission reopens — the release
// rides the terminal transition.
func TestQuotaBoundsInFlightJobs(t *testing.T) {
	ts := NewTenants()
	if err := ts.Add("tok", "alice", TenantLimits{Quota: 1}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Tenants: ts, Executors: -1})
	defer s.Shutdown(context.Background())

	st, err := s.SubmitAs(ringSpec(3, 5), "alice", false)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.SubmitAs(ringSpec(4, 6), "alice", false)
	if errorCode(err) != http.StatusTooManyRequests {
		t.Fatalf("over quota: %v, want 429", err)
	}
	if got := errorTenant(err); got != "alice" {
		t.Fatalf("rejection charges %q, want alice", got)
	}
	if got := s.metrics.QuotaRejected.Load(); got != 1 {
		t.Fatalf("quota rejected = %d, want 1", got)
	}
	// An identical submission coalesces — followers hold no quota slot.
	co, err := s.SubmitAs(ringSpec(3, 5), "alice", false)
	if err != nil {
		t.Fatalf("coalesced resubmit bounced: %v", err)
	}
	if !co.Coalesced {
		t.Fatalf("resubmit did not coalesce: %+v", co)
	}
	// Cancel frees the slot; a fresh spec is admitted again.
	if _, ok := s.Cancel(st.ID); !ok {
		t.Fatal("cancel lost the job")
	}
	waitTerminal(t, s, st.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = s.SubmitAs(ringSpec(4, 6), "alice", false)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("quota slot never released: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The canceled leader released its slot (taking its coalesced follower
	// with it); only the freshly admitted job holds one.
	if got := ts.ByName("alice").InFlight(); got != 1 {
		t.Fatalf("in-flight = %d, want 1", got)
	}
}

// TestPriorityPreemptsQueueOrder parks normal jobs behind a held
// executor, slips a high-priority job in last, and checks it runs first
// — queue order is preempted, the running check is not.
func TestPriorityPreemptsQueueOrder(t *testing.T) {
	var (
		mu       sync.Mutex
		runOrder []string
	)
	hold := make(chan struct{})
	first := make(chan string, 1)
	testHookJobRunning = func(id string) {
		mu.Lock()
		runOrder = append(runOrder, id)
		n := len(runOrder)
		mu.Unlock()
		if n == 1 {
			first <- id
			<-hold // keep the executor busy while the queue fills
		}
	}
	defer func() { testHookJobRunning = nil }()

	s := New(Config{Executors: 1, QueueSize: 8})
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	<-first
	normal, err := s.Submit(ringSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	highSpec := ringSpec(5, 7)
	highSpec.Options.Priority = "high"
	high, err := s.Submit(highSpec)
	if err != nil {
		t.Fatal(err)
	}
	close(hold)
	waitTerminal(t, s, normal.ID)
	waitTerminal(t, s, high.ID)

	mu.Lock()
	defer mu.Unlock()
	if len(runOrder) != 3 || runOrder[0] != blocker.ID ||
		runOrder[1] != high.ID || runOrder[2] != normal.ID {
		t.Fatalf("run order %v, want [%s %s %s]", runOrder, blocker.ID, high.ID, normal.ID)
	}
	if got := s.metrics.HighPriority.Load(); got != 1 {
		t.Fatalf("high priority = %d, want 1", got)
	}
}

func TestSubmitRejectsUnknownPriority(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	spec := ringSpec(3, 5)
	spec.Options.Priority = "urgent"
	if _, err := s.Submit(spec); errorCode(err) != http.StatusBadRequest {
		t.Fatalf("unknown priority: %v, want 400", err)
	}
}

// TestReadyzFlipsBeforeAdmissionCloses drives a Shutdown with a drain
// grace and checks the ordering the load balancer depends on: /readyz
// fails first while submissions are still accepted, /healthz stays 200
// throughout, and only after the grace do submissions bounce with 503.
func TestReadyzFlipsBeforeAdmissionCloses(t *testing.T) {
	s := New(Config{DrainGrace: 300 * time.Millisecond})
	h := s.Handler()
	probe := func(path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code
	}
	if probe("/readyz") != http.StatusOK || probe("/healthz") != http.StatusOK {
		t.Fatal("fresh server not ready/healthy")
	}

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// Wait for readiness to drop.
	deadline := time.Now().Add(5 * time.Second)
	for probe("/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Inside the grace window: not ready, still live, still admitting.
	if probe("/healthz") != http.StatusOK {
		t.Fatal("liveness dropped during drain grace")
	}
	if _, err := s.Submit(ringSpec(3, 5)); err != nil {
		t.Fatalf("submission bounced during drain grace: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Drained: admission closed, liveness still up (the process runs).
	if _, err := s.Submit(ringSpec(4, 6)); errorCode(err) != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: %v, want 503", err)
	}
	if probe("/healthz") != http.StatusOK {
		t.Fatal("liveness dropped after drain")
	}
}
