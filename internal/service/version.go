package service

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running server build, so event streams and
// metric scrapes can be correlated across deploys. Served by
// GET /v1/version and exposed as the csserved_build_info info-gauge.
type BuildInfo struct {
	// Module is the main module path.
	Module string `json:"module"`
	// Version is the main module version ("(devel)" for tree builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision and Modified carry the VCS stamp when the build had one.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// ReadBuild returns the binary's build identity via
// runtime/debug.ReadBuildInfo, computed once.
func ReadBuild() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Module: "unknown", Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Path != "" {
			buildInfo.Module = bi.Main.Path
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		if bi.GoVersion != "" {
			buildInfo.GoVersion = bi.GoVersion
		}
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision":
				buildInfo.Revision = st.Value
			case "vcs.modified":
				buildInfo.Modified = st.Value == "true"
			}
		}
	})
	return buildInfo
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ReadBuild())
}

// writeBuildInfo renders the build identity as a Prometheus info-style
// gauge (constant 1, identity in the labels).
func writeBuildInfo(w io.Writer) {
	b := ReadBuild()
	fmt.Fprintf(w, "# HELP csserved_build_info Build identity of the running server (constant 1; identity in labels).\n")
	fmt.Fprintf(w, "# TYPE csserved_build_info gauge\n")
	fmt.Fprintf(w, "csserved_build_info{module=%q,version=%q,go=%q} 1\n", b.Module, b.Version, b.GoVersion)
}
