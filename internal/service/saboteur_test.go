package service

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"nonmask/internal/protocols/registry"
	"nonmask/internal/saboteur"
	"nonmask/internal/verify"
)

// sabSpec is a catalog job that also requests the adversarial search.
func sabSpec(protocol string, p registry.Params, k int) JobSpec {
	return JobSpec{Protocol: protocol, Params: p,
		Options: JobOptions{Saboteur: &SaboteurOptions{K: k}}}
}

// TestSaboteurJobEndToEnd is the tentpole's service-facing acceptance:
// a saboteur job returns a witness whose independent program-level replay
// reproduces the claimed cost bit-for-bit, the search span joins the
// result's pass breakdown, and the csserved_saboteur_* counters move.
func TestSaboteurJobEndToEnd(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(sabSpec("diffusing", registry.Params{N: 3}, 2))
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s (err %q)", done.State, done.Error)
	}
	sab := done.Result.Saboteur
	if sab == nil {
		t.Fatal("result has no saboteur block")
	}
	if sab.K != 2 || sab.Objective != saboteur.ObjectiveRecovery {
		t.Fatalf("echoed options k=%d objective=%q", sab.K, sab.Objective)
	}
	if sab.Cost <= 0 || !sab.Optimal {
		t.Fatalf("cost=%d optimal=%v, want damaging optimal schedule", sab.Cost, sab.Optimal)
	}
	w := sab.Witness
	if w == nil {
		t.Fatal("no witness on a positive-cost result")
	}
	if w.Protocol != "diffusing" || w.Params == nil {
		t.Fatalf("witness lacks catalog identity: protocol=%q params=%v", w.Protocol, w.Params)
	}
	inst, err := registry.Build(w.Protocol, *w.Params)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := w.Replay(inst.Program, inst.S, inst.T)
	if err != nil {
		t.Fatalf("witness replay: %v", err)
	}
	if rp.Cost != sab.Cost {
		t.Fatalf("replayed cost %d != claimed %d", rp.Cost, sab.Cost)
	}

	foundPass := false
	for _, p := range done.Result.Passes {
		if p.Pass == saboteur.PassSearch {
			foundPass = true
		}
	}
	if !foundPass {
		t.Fatalf("pass %q missing from result passes %v", saboteur.PassSearch, done.Result.Passes)
	}
	if got := s.metrics.SaboteurJobs.Load(); got != 1 {
		t.Fatalf("saboteur jobs counter = %d, want 1", got)
	}
	if got := s.metrics.SaboteurOptimal.Load(); got != 1 {
		t.Fatalf("saboteur optimal counter = %d, want 1", got)
	}
	if got := s.metrics.SaboteurExpanded.Load(); got <= 0 {
		t.Fatalf("saboteur expanded counter = %d, want > 0", got)
	}
}

// TestVerdictOnlyNoSaboteurOverhead pins the bench-guard property: a job
// without options.saboteur carries no saboteur block, emits no search
// pass, and moves no saboteur counter.
func TestVerdictOnlyNoSaboteurOverhead(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	j, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.State != StateDone {
		t.Fatalf("job ended %s (err %q)", done.State, done.Error)
	}
	if done.Result.Saboteur != nil {
		t.Fatal("verdict-only result grew a saboteur block")
	}
	for _, p := range done.Result.Passes {
		if p.Pass == saboteur.PassSearch {
			t.Fatal("verdict-only job ran the saboteur search pass")
		}
	}
	if got := s.metrics.SaboteurJobs.Load(); got != 0 {
		t.Fatalf("saboteur jobs counter = %d on a verdict-only job", got)
	}
	raw, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "saboteur") {
		t.Fatalf("verdict-only result JSON mentions the saboteur:\n%s", raw)
	}
}

// TestSaboteurCacheSeparation: a verdict-only result must never answer a
// saboteur job (it lacks the witness), and vice versa; resubmitting the
// same saboteur job is a cache hit with the witness intact.
func TestSaboteurCacheSeparation(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	plain, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, plain.ID)

	sab, err := s.Submit(sabSpec("tokenring-ring", registry.Params{N: 3, K: 5}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if sab.Key == plain.Key {
		t.Fatal("saboteur job shares the verdict-only cache key")
	}
	done := waitTerminal(t, s, sab.ID)
	if done.Cached {
		t.Fatal("saboteur job was answered by the verdict-only cache line")
	}
	if done.Result.Saboteur == nil || done.Result.Saboteur.Witness == nil {
		t.Fatalf("saboteur result incomplete: %+v", done.Result.Saboteur)
	}

	again, err := s.Submit(sabSpec("tokenring-ring", registry.Params{N: 3, K: 5}, 2))
	if err != nil {
		t.Fatal(err)
	}
	hit := waitTerminal(t, s, again.ID)
	if !hit.Cached {
		t.Fatal("identical saboteur resubmission missed the cache")
	}
	if hit.Result.Saboteur == nil || hit.Result.Saboteur.Witness == nil {
		t.Fatal("cached saboteur result lost its witness")
	}
	// A different budget is a different cache line (the key renders the
	// normalized options).
	diff, err := s.Submit(JobSpec{Protocol: "tokenring-ring",
		Params:  registry.Params{N: 3, K: 5},
		Options: JobOptions{Saboteur: &SaboteurOptions{K: 2, Budget: 1 << 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if diff.Key == sab.Key {
		t.Fatal("distinct saboteur budgets share a cache key")
	}
	waitTerminal(t, s, diff.ID)
}

// TestSaboteurSubmissionRejections: invalid knobs and non-enumerable
// instances fail at submission with the advertised bound in the error,
// never occupying a queue slot.
func TestSaboteurSubmissionRejections(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())

	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"zero k", sabSpec("diffusing", registry.Params{N: 3}, 0), "k must be in"},
		{"huge k", sabSpec("diffusing", registry.Params{N: 3}, 17), "k must be in"},
		{"bad objective", JobSpec{Protocol: "diffusing", Params: registry.Params{N: 3},
			Options: JobOptions{Saboteur: &SaboteurOptions{K: 1, Objective: "chaos"}}},
			"unknown objective"},
		{"negative budget", JobSpec{Protocol: "diffusing", Params: registry.Params{N: 3},
			Options: JobOptions{Saboteur: &SaboteurOptions{K: 1, Budget: -1}}},
			"budget must be non-negative"},
		{"non-enumerable protocol", JobSpec{Protocol: "tokenring-ring",
			Params:  registry.Params{N: 3, K: 5},
			Options: JobOptions{MaxStates: 8, Saboteur: &SaboteurOptions{K: 1}}},
			"advertised bound"},
		{"non-enumerable source", JobSpec{
			Source:  "program toy;\nvar x : 0..7;\ninvariant I : true;\naction inc closure : x < 7 -> x := x + 1;",
			Options: JobOptions{MaxStates: 4, Saboteur: &SaboteurOptions{K: 1}}},
			"advertised bound"},
	}
	for _, tc := range cases {
		if _, err := s.Submit(tc.spec); err == nil {
			t.Errorf("%s: submission accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestResultRoundTripPreservesUnknownFields is the store-compatibility
// fix: a Result decoded from JSON written by a future additive producer
// must re-encode with the unknown blocks intact, including through the
// persistent store's read path.
func TestResultRoundTripPreservesUnknownFields(t *testing.T) {
	src := []byte(`{"schema_version":3,"program":"p","states":1,"states_s":1,"states_t":1,` +
		`"classification":"nonmasking","closure_ok":true,"unfair":{"converges":true,"fair":false,"summary":"ok"},` +
		`"verdict":"satisfied","elapsed_ms":1,"workers":1,` +
		`"future_block":{"answer":42},"future_flag":true}`)
	var res Result
	if err := json.Unmarshal(src, &res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictSatisfied || res.SchemaVersion != 3 {
		t.Fatalf("known fields mangled: %+v", res)
	}
	out, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"future_block":{"answer":42}`, `"future_flag":true`, `"verdict":"satisfied"`} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("round trip lost %s:\n%s", want, out)
		}
	}

	// The same property through the service: a stored record with a
	// future block must be served (cache read path: store decode →
	// status re-encode) without dropping it.
	dir := t.TempDir()
	st := openStoreT(t, dir)
	defer st.Close()
	params, err := registry.Normalize("tokenring-ring", registry.Params{N: 3, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	key := FingerprintProtocol("tokenring-ring", params, verify.Options{})
	if err := st.Put(key, src); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Store: st})
	defer s.Shutdown(context.Background())
	hit, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.Result == nil {
		t.Fatalf("seeded store record not served: %+v", hit)
	}
	served, err := json.Marshal(hit.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(served), `"future_block":{"answer":42}`) {
		t.Fatalf("store read path dropped the future block:\n%s", served)
	}
}
