package service

import (
	"context"
	"strings"
	"testing"
)

// TestCoalescesIdenticalInFlight pins single-flight semantics: identical
// submissions arriving while a leader is queued or running attach to it,
// run no check of their own, and inherit the leader's result.
func TestCoalescesIdenticalInFlight(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	testHookJobRunning = func(id string) {
		started <- id
		<-release
	}
	defer func() { testHookJobRunning = nil }()

	s := New(Config{Executors: 1, QueueSize: 4})
	defer s.Shutdown(context.Background())

	leader, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the executor holds the leader in flight

	var followers []JobStatus
	for i := 0; i < 2; i++ {
		st, err := s.Submit(ringSpec(3, 5))
		if err != nil {
			t.Fatalf("follower %d: %v", i, err)
		}
		if !st.Coalesced {
			t.Fatalf("follower %d not coalesced: %+v", i, st)
		}
		if st.ID == leader.ID {
			t.Fatalf("follower %d reused the leader's id %s", i, st.ID)
		}
		if st.Key != leader.Key {
			t.Fatalf("follower %d key %s, leader key %s", i, st.Key, leader.Key)
		}
		followers = append(followers, st)
	}
	// A different instance does not coalesce.
	other, err := s.Submit(ringSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if other.Coalesced {
		t.Fatalf("distinct spec coalesced onto %s", leader.ID)
	}
	if got := s.metrics.Coalesced.Load(); got != 2 {
		t.Fatalf("coalesced = %d, want 2", got)
	}

	close(release)
	lst := waitTerminal(t, s, leader.ID)
	if lst.State != StateDone || lst.Result == nil {
		t.Fatalf("leader ended %s (err %q)", lst.State, lst.Error)
	}
	for _, f := range followers {
		fst := waitTerminal(t, s, f.ID)
		if fst.State != StateDone || fst.Result == nil {
			t.Fatalf("follower %s ended %s (err %q)", f.ID, fst.State, fst.Error)
		}
		if fst.Result.Verdict != lst.Result.Verdict || fst.Result.States != lst.Result.States {
			t.Fatalf("follower %s result %+v diverges from leader %+v",
				f.ID, fst.Result, lst.Result)
		}
		if !fst.Coalesced {
			t.Fatalf("follower %s lost its coalesced mark at completion", f.ID)
		}
	}
	// One leader + one distinct spec ran; the followers must not have.
	waitTerminal(t, s, other.ID)
	if got := s.metrics.Completed.Load(); got != 2 {
		t.Fatalf("completed = %d, want 2 (followers must not run checks)", got)
	}

	// The in-flight entry is released on the terminal transition, so a
	// fresh identical submission is a cache hit, not a coalesce.
	again, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if again.Coalesced || !again.Cached {
		t.Fatalf("post-completion resubmit: %+v, want a cache hit", again)
	}
}

// TestCancelQueuedLeaderCancelsFollowers checks that followers inherit a
// queued leader's cancellation — both via explicit Cancel and via the
// Shutdown drain.
func TestCancelQueuedLeaderCancelsFollowers(t *testing.T) {
	// No executors: leaders park in the queue.
	s := New(Config{Executors: -1, QueueSize: 4})

	leader, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	follower, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Coalesced {
		t.Fatalf("second submission not coalesced: %+v", follower)
	}
	if _, ok := s.Cancel(leader.ID); !ok {
		t.Fatal("cancel leader: not found")
	}
	fst := waitTerminal(t, s, follower.ID)
	if fst.State != StateCanceled {
		t.Fatalf("follower ended %s, want canceled with its leader", fst.State)
	}

	// Second pair: canceled by the Shutdown drain instead.
	leader2, err := s.Submit(ringSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	follower2, err := s.Submit(ringSpec(4, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{leader2.ID, follower2.ID} {
		st := waitTerminal(t, s, id)
		if st.State != StateCanceled {
			t.Fatalf("job %s ended %s, want canceled by the drain", id, st.State)
		}
	}
}

// TestMetricsExposeCoalescedAndIndexSizes checks the new exposition lines:
// the single-flight counter and the per-pass edges/bytes totals.
func TestMetricsExposeCoalescedAndIndexSizes(t *testing.T) {
	s := New(Config{Executors: 1})
	defer s.Shutdown(context.Background())
	st, err := s.Submit(ringSpec(3, 5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)

	var b strings.Builder
	s.metrics.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"csserved_jobs_coalesced_total 0",
		`csserved_pass_edges_total{pass="succ_table"}`,
		`csserved_pass_bytes_total{pass="succ_table"}`,
		`csserved_pass_edges_total{pass="pred_table"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	// succ_table measured a positive edge count for the ring.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `csserved_pass_edges_total{pass="succ_table"} `) {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("succ_table edges total is zero: %q", line)
			}
		}
	}
}
