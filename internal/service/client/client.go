// Package client is the typed Go caller for the csserved HTTP API
// (internal/service). It is used by the service's own tests, the
// csserved -load self-benchmark, and the CI smoke test.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"nonmask/internal/service"
)

// defaultPoll is the long-poll window Wait re-arms between status reads.
const defaultPoll = 10 * time.Second

// Client talks to one csserved instance.
type Client struct {
	base    string
	hc      *http.Client
	headers map[string]string
	retry   RetryPolicy
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
// httpClient may be nil for http.DefaultClient.
func New(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: httpClient}
}

// WithToken sets the bearer token sent with every request. Configure
// before sharing the client across goroutines; returns the client for
// chaining.
func (c *Client) WithToken(token string) *Client {
	return c.WithHeader("Authorization", "Bearer "+token)
}

// WithHeader adds a header to every request (forwarding metadata, auth).
// Configure before sharing the client across goroutines.
func (c *Client) WithHeader(key, value string) *Client {
	if c.headers == nil {
		c.headers = make(map[string]string)
	}
	c.headers[key] = value
	return c
}

// RetryPolicy retries requests that come back with admission-control
// pushback (429/503), sleeping a jittered exponential backoff between
// attempts. The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first;
	// values below 2 disable retries.
	MaxAttempts int
	// BaseDelay seeds the backoff: attempt n sleeps up to
	// BaseDelay * 2^n, equal-jittered (uniform in [d/2, d)). Non-positive
	// means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps one sleep. Non-positive means 5s.
	MaxDelay time.Duration
}

// WithRetry installs a retry policy. Only pushback responses (429/503)
// are retried — transport errors and other status codes surface
// immediately, and the request body is re-sent from scratch each
// attempt, which is safe because submissions are content-addressed and
// therefore idempotent. Configure before sharing the client.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	c.retry = p
	return c
}

// backoffDelay returns the equal-jittered exponential delay for attempt
// (0-based: the delay after the first failure is attempt 0).
func (p RetryPolicy) backoffDelay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Equal jitter: half deterministic, half uniform — spreads a thundering
	// herd without ever collapsing the delay to ~zero.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// APIError is a non-2xx response decoded from the service's error envelope.
type APIError struct {
	Code int
	Msg  string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("csserved: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// IsRetryable reports whether the error is admission-control pushback
// (queue full or draining) that a caller may retry after a backoff.
func (e *APIError) IsRetryable() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}

// HTTPStatus implements service.HTTPStatusError: a forwarding node uses
// it to tell the remote's verdict (pass the status through) from a
// transport failure (fall back to running locally).
func (e *APIError) HTTPStatus() int { return e.Code }

func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, in, out)
		var apiErr *APIError
		if err == nil || attempt+1 >= c.retry.MaxAttempts ||
			!errors.As(err, &apiErr) || !apiErr.IsRetryable() {
			return err
		}
		timer := time.NewTimer(c.retry.backoffDelay(attempt))
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{Code: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Submit posts a job and returns its admission status (already done on a
// cache hit).
func (c *Client) Submit(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Job reads a job's status; wait > 0 long-polls until the job finishes or
// the window elapses.
func (c *Client) Job(ctx context.Context, id string, wait time.Duration) (service.JobStatus, error) {
	path := "/v1/jobs/" + url.PathEscape(id)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// Wait long-polls until the job reaches a terminal state or ctx is done.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	for {
		st, err := c.Job(ctx, id, defaultPoll)
		if err != nil {
			return st, err
		}
		if st.State == service.StateDone || st.State == service.StateFailed || st.State == service.StateCanceled {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// Run submits a job and waits for its terminal status: the one-call path
// for "check this and give me the verdict".
func (c *Client) Run(ctx context.Context, spec service.JobSpec) (service.JobStatus, error) {
	st, err := c.Submit(ctx, spec)
	if err != nil || st.State == service.StateDone {
		return st, err
	}
	return c.Wait(ctx, st.ID)
}

// SubmitBatch posts a batch (explicit specs or a declarative sweep) and
// returns its admission status.
func (c *Client) SubmitBatch(ctx context.Context, spec service.BatchSpec) (service.BatchStatus, error) {
	var st service.BatchStatus
	err := c.do(ctx, http.MethodPost, "/v1/batches", spec, &st)
	return st, err
}

// Batch reads a batch's status; wait > 0 long-polls until every member is
// terminal or the window elapses.
func (c *Client) Batch(ctx context.Context, id string, wait time.Duration) (service.BatchStatus, error) {
	path := "/v1/batches/" + url.PathEscape(id)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	var st service.BatchStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// WaitBatch long-polls until the batch reaches a terminal state or ctx is
// done.
func (c *Client) WaitBatch(ctx context.Context, id string) (service.BatchStatus, error) {
	for {
		st, err := c.Batch(ctx, id, defaultPoll)
		if err != nil {
			return st, err
		}
		if st.State == service.BatchDone || st.State == service.BatchCanceled {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// CancelBatch stops a batch's admission and cancels its non-terminal
// members.
func (c *Client) CancelBatch(ctx context.Context, id string) (service.BatchStatus, error) {
	var st service.BatchStatus
	err := c.do(ctx, http.MethodDelete, "/v1/batches/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Jobs lists retained job records, newest first. limit 0 means the
// server's page cap; offset skips past records.
func (c *Client) Jobs(ctx context.Context, limit, offset int) (service.JobsPage, error) {
	path := "/v1/jobs"
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", fmt.Sprint(limit))
	}
	if offset > 0 {
		q.Set("offset", fmt.Sprint(offset))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page service.JobsPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Cancel cancels a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Protocols lists the built-in catalog.
func (c *Client) Protocols(ctx context.Context) ([]service.ProtocolInfo, error) {
	var out []service.ProtocolInfo
	err := c.do(ctx, http.MethodGet, "/v1/protocols", nil, &out)
	return out, err
}

// Version fetches the server's build identity.
func (c *Client) Version(ctx context.Context) (service.BuildInfo, error) {
	var out service.BuildInfo
	err := c.do(ctx, http.MethodGet, "/v1/version", nil, &out)
	return out, err
}

// Healthz probes liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Readyz probes readiness: whether the node is accepting new work. A
// draining node fails this while still answering Healthz.
func (c *Client) Readyz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Replicate pulls one page of the server's store log from the given
// cursor (anti-entropy; see service.ReplicateRequest).
func (c *Client) Replicate(ctx context.Context, req service.ReplicateRequest) (service.ReplicateResponse, error) {
	var resp service.ReplicateResponse
	err := c.do(ctx, http.MethodPost, "/v1/replicate", req, &resp)
	return resp, err
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Code: resp.StatusCode, Msg: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}

// MetricValue extracts one metric's value from a Prometheus text
// exposition (plain counters/gauges only, no labels).
func MetricValue(exposition, name string) (float64, bool) {
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}
