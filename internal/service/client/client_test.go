package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nonmask/internal/service"
)

// fakeServer fails the first fail requests with code, then succeeds.
func fakeServer(t *testing.T, fail int32, code int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= fail {
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]string{"error": "pushback"})
			return
		}
		json.NewEncoder(w).Encode(service.BuildInfo{Version: "test"})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

func TestRetryRecoversFromPushback(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		srv, calls := fakeServer(t, 2, code)
		c := New(srv.URL, nil).WithRetry(RetryPolicy{
			MaxAttempts: 4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    5 * time.Millisecond,
		})
		if _, err := c.Version(context.Background()); err != nil {
			t.Fatalf("code %d: retried call failed: %v", code, err)
		}
		if n := calls.Load(); n != 3 {
			t.Fatalf("code %d: server saw %d calls, want 3 (two failures + success)", code, n)
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	srv, calls := fakeServer(t, 100, http.StatusTooManyRequests)
	c := New(srv.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
	})
	_, err := c.Version(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want the final 429", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", n)
	}
}

func TestRetryDoesNotTouchNonRetryableErrors(t *testing.T) {
	srv, calls := fakeServer(t, 100, http.StatusBadRequest)
	c := New(srv.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	_, err := c.Version(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want immediate 400", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (400 is not retryable)", n)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	srv, calls := fakeServer(t, 100, http.StatusServiceUnavailable)
	c := New(srv.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   time.Hour, // backoff far longer than the context
		MaxDelay:    time.Hour,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Version(ctx)
	if err == nil {
		t.Fatal("expected an error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("retry loop ignored context cancellation (took %v)", time.Since(start))
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 before cancellation", n)
	}
}

func TestHeadersAndTokenSent(t *testing.T) {
	var gotAuth, gotCustom string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		gotCustom = r.Header.Get("X-Custom")
		json.NewEncoder(w).Encode(service.BuildInfo{})
	}))
	defer srv.Close()
	c := New(srv.URL, nil).WithToken("sekrit").WithHeader("X-Custom", "yes")
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatalf("version: %v", err)
	}
	if gotAuth != "Bearer sekrit" {
		t.Errorf("Authorization = %q, want Bearer sekrit", gotAuth)
	}
	if gotCustom != "yes" {
		t.Errorf("X-Custom = %q, want yes", gotCustom)
	}
}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		d := p.backoffDelay(attempt)
		want := p.BaseDelay << attempt
		if want > p.MaxDelay || want <= 0 {
			want = p.MaxDelay
		}
		if d < want/2 || d > want {
			t.Errorf("attempt %d: delay %v outside jitter window [%v, %v]", attempt, d, want/2, want)
		}
	}
}
