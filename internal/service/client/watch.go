package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"nonmask/internal/obs"
	"nonmask/internal/service"
)

// Watcher iterates one server-sent event stream as decoded obs.Events.
// Create one with WatchJob, WatchBatch, or WatchEvents; call Next until
// it reports done (the server closed a finished stream) or ctx
// cancellation surfaces as an error; Close releases the connection.
type Watcher struct {
	body io.ReadCloser
	br   *bufio.Reader
}

// Next returns the stream's next event. done reports a clean end of
// stream — the server finished the feed (terminal job/batch event, or
// drain); err carries transport failures and context cancellation.
// Heartbeat comments are skipped transparently.
func (w *Watcher) Next() (ev obs.Event, done bool, err error) {
	var data []byte
	for {
		line, err := w.br.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				return obs.Event{}, true, nil
			}
			return obs.Event{}, false, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if len(data) == 0 {
				continue // separator after a comment frame
			}
			var ev obs.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return obs.Event{}, false, fmt.Errorf("decode event: %w", err)
			}
			return ev, false, nil
		case strings.HasPrefix(line, ":"):
			// Heartbeat / comment.
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// id:/event: lines — the JSON payload carries both already.
		}
	}
}

// Close releases the underlying connection. Safe after an error.
func (w *Watcher) Close() error { return w.body.Close() }

// watch opens one SSE endpoint. after resumes past an already-seen
// sequence number via Last-Event-ID (0 = from the retained beginning).
func (c *Client) watch(ctx context.Context, path string, after uint64) (*Watcher, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(after, 10))
	}
	for k, v := range c.headers {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &APIError{Code: resp.StatusCode, Msg: msg}
	}
	return &Watcher{body: resp.Body, br: bufio.NewReader(resp.Body)}, nil
}

// WatchJob streams a job's events: the replayed history first, then live
// until the terminal job event, after which Next reports done. Canceling
// ctx tears the stream down.
func (c *Client) WatchJob(ctx context.Context, id string, after uint64) (*Watcher, error) {
	return c.watch(ctx, "/v1/jobs/"+url.PathEscape(id)+"/events", after)
}

// WatchBatch streams a batch's events until its terminal event.
func (c *Client) WatchBatch(ctx context.Context, id string, after uint64) (*Watcher, error) {
	return c.watch(ctx, "/v1/batches/"+url.PathEscape(id)+"/events", after)
}

// WatchEvents streams the operator firehose, optionally filtered to the
// given event types; it runs until ctx is canceled or the server drains.
// after resumes by bus-global sequence number.
func (c *Client) WatchEvents(ctx context.Context, after uint64, types ...obs.EventType) (*Watcher, error) {
	path := "/v1/events"
	if len(types) > 0 {
		parts := make([]string, len(types))
		for i, t := range types {
			parts[i] = string(t)
		}
		path += "?types=" + url.QueryEscape(strings.Join(parts, ","))
	}
	return c.watch(ctx, path, after)
}

// TailJob watches a job's stream end to end, rendering each event's line
// form to lines (nil discards) and collecting completed pass spans. It
// returns the terminal state with its detail (verdict or error) once the
// stream ends. The CLIs' -watch loops are thin wrappers over it.
func (c *Client) TailJob(ctx context.Context, id string, after uint64, lines io.Writer) (state service.JobState, detail string, stats []obs.PassStat, err error) {
	w, err := c.WatchJob(ctx, id, after)
	if err != nil {
		return "", "", nil, err
	}
	defer w.Close()
	for {
		ev, done, err := w.Next()
		if err != nil {
			return state, detail, stats, err
		}
		if done {
			if state == "" {
				return state, detail, stats, fmt.Errorf("event stream ended before a terminal job event (server draining?)")
			}
			return state, detail, stats, nil
		}
		if lines != nil {
			if line := obs.FormatEventLine(ev); line != "" {
				fmt.Fprintln(lines, line)
			}
		}
		switch ev.Type {
		case obs.EventPassEnd:
			if ev.Stat != nil {
				stats = append(stats, *ev.Stat)
			}
		case obs.EventJob:
			if st := service.JobState(ev.State); st.Terminal() {
				state, detail = st, ev.Detail
			}
		}
	}
}
