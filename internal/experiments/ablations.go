package experiments

import (
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "A1",
		Title:    "Ablation: alternative establishing statements for R.j",
		PaperRef: "Section 5.1 ('there are several statements that establish R.j')",
		Run:      runA1,
	})
	register(&Experiment{
		ID:       "A2",
		Title:    "Ablation: separate vs combined closure/convergence actions",
		PaperRef: "Sections 5.1 and 7.1 (the combination steps)",
		Run:      runA2,
	})
	register(&Experiment{
		ID:       "A3",
		Title:    "Ablation: daemon sensitivity of convergence cost",
		PaperRef: "Section 2 computation model vs Section 8 fairness remark",
		Run:      runA3,
	})
}

// runA1 compares the two establishing statements the paper offers: both
// must validate by Theorem 1 and stabilize; the worst-case costs differ.
func runA1() (*metrics.Table, error) {
	t := metrics.NewTable("A1: establishing statement for R.j (paper Section 5.1)",
		"statement", "tree", "theorem 1", "unfair conv", "worst steps", "mean steps")
	for _, variant := range []diffusing.EstablishVariant{diffusing.CopyParent, diffusing.ConditionalGreen} {
		for _, tc := range []struct {
			name string
			tr   diffusing.Tree
		}{
			{"chain5", diffusing.Chain(5)},
			{"binary7", diffusing.Binary(7)},
		} {
			inst, err := diffusing.NewVariant(tc.tr, variant)
			if err != nil {
				return nil, err
			}
			r, _, err := inst.Design.Validate(verify.Projected, verify.Options{})
			if err != nil {
				return nil, err
			}
			res, err := inst.Design.Verify(verify.Options{})
			if err != nil {
				return nil, err
			}
			t.AddRow(variant.String(), tc.name,
				verdict(r != nil),
				verdict(res.Unfair.Converges),
				fmt.Sprintf("%d", res.Unfair.WorstSteps),
				fmt.Sprintf("%.2f", res.Unfair.MeanSteps))
		}
	}
	t.Note("both statements satisfy Theorem 1, as the paper claims; the copy-parent form")
	t.Note("doubles as the propagation action, enabling the combined printed program")
	return t, nil
}

// runA2 confirms that combining actions (the paper's final step in both
// designs) preserves the transition relation exactly, and compares action
// counts.
func runA2() (*metrics.Table, error) {
	t := metrics.NewTable("A2: separate vs combined action forms",
		"design", "separate actions", "combined actions", "transition relations equal")

	dInst, err := diffusing.New(diffusing.Binary(6))
	if err != nil {
		return nil, err
	}
	dSame, err := sameTransitions(dInst.Design.TolerantProgram(), dInst.Combined)
	if err != nil {
		return nil, err
	}
	t.AddRow("diffusing binary6",
		fmt.Sprintf("%d", len(dInst.Design.TolerantProgram().Actions)),
		fmt.Sprintf("%d", len(dInst.Combined.Actions)),
		verdict(dSame))

	pInst, err := tokenring.NewPath(3, 4)
	if err != nil {
		return nil, err
	}
	pSame, err := sameTransitions(pInst.Design.TolerantProgram(), pInst.Combined)
	if err != nil {
		return nil, err
	}
	t.AddRow("tokenring path N=3 K=4",
		fmt.Sprintf("%d", len(pInst.Design.TolerantProgram().Actions)),
		fmt.Sprintf("%d", len(pInst.Combined.Actions)),
		verdict(pSame))

	t.Note("the combined forms are the programs the paper prints; equality is checked on")
	t.Note("every state of the instance")
	return t, nil
}

// sameTransitions compares two programs' successor sets on every state.
func sameTransitions(a, b *program.Program) (bool, error) {
	schema := a.Schema
	count, ok := schema.StateCount()
	if !ok {
		return false, fmt.Errorf("space too large")
	}
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		sa := map[int64]bool{}
		for _, act := range a.Actions {
			if act.Guard(st) {
				sa[schema.Index(act.Apply(st))] = true
			}
		}
		sb := map[int64]bool{}
		for _, act := range b.Actions {
			if act.Guard(st) {
				sb[schema.Index(act.Apply(st))] = true
			}
		}
		if len(sa) != len(sb) {
			return false, nil
		}
		for k := range sa {
			if !sb[k] {
				return false, nil
			}
		}
	}
	return true, nil
}

// runA3 measures how scheduling affects convergence cost on one instance.
func runA3() (*metrics.Table, error) {
	inst, err := diffusing.New(diffusing.Binary(63))
	if err != nil {
		return nil, err
	}
	p := inst.Design.TolerantProgram()
	var preds []*program.Predicate
	for _, c := range inst.Design.Set.Constraints {
		preds = append(preds, c.Pred)
	}
	daemons := []daemon.Daemon{
		daemon.NewRoundRobin(p),
		daemon.NewRandom(5),
		daemon.NewAdversarial("adversarial", daemon.ViolationMetric(preds)),
		daemon.NewKindBiased(daemon.NewRandom(6), program.Closure),
	}
	t := metrics.NewTable("A3: daemon sensitivity (diffusing, binary N=63, all nodes corrupted, 100 runs)",
		"daemon", "converged", "mean steps", "p95", "max")
	for _, d := range daemons {
		r := &sim.Runner{P: p, S: inst.Design.S, D: d, MaxSteps: 2_000_000, StopAtS: true}
		rng := rand.New(rand.NewSource(31))
		batch := r.RunMany(100, rng, sim.CorruptedStates(inst.AllGreen(),
			&fault.CorruptGroups{Groups: inst.Groups}))
		s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
		t.AddRow(d.Name(), fmt.Sprintf("%d/100", batch.ConvergedRuns),
			fmt.Sprintf("%.1f", s.Mean), fmt.Sprintf("%.1f", s.P95), fmt.Sprintf("%.0f", s.Max))
	}
	t.Note("the closure-biased daemon starves convergence actions yet still converges:")
	t.Note("closure actions cannot re-violate established constraints (Theorem 1's first antecedent)")
	return t, nil
}
