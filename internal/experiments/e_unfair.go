package experiments

import (
	"fmt"
	"math/rand"

	"nonmask/internal/core"
	"nonmask/internal/daemon"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/reset"
	"nonmask/internal/protocols/spanningtree"
	"nonmask/internal/protocols/termination"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/protocols/xyz"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "E9",
		Title:    "Fairness is unnecessary: unfair-daemon convergence of every design",
		PaperRef: "Section 8, concluding remarks",
		Run:      runE9,
	})
}

// runE9 exercises the Section 8 remark twice over: exactly (the model
// checker's arbitrary daemon subsumes every unfair schedule) on small
// instances, and statistically with greedy adversarial daemons at scale.
func runE9() (*metrics.Table, error) {
	t := metrics.NewTable("E9: convergence without fairness (paper Section 8 remark)",
		"design", "instance", "check", "converges", "detail")

	// Exact: the arbitrary-daemon verdict covers all unfair schedules.
	smalls := []struct {
		name, instance string
		design         *core.Design
	}{}
	if inst, err := xyz.New(xyz.OutTree); err == nil {
		smalls = append(smalls, struct {
			name, instance string
			design         *core.Design
		}{"xyz", "out-tree", inst.Design})
	}
	if inst, err := diffusing.New(diffusing.Binary(7)); err == nil {
		smalls = append(smalls, struct {
			name, instance string
			design         *core.Design
		}{"diffusing", "binary N=7", inst.Design})
	}
	if inst, err := tokenring.NewPath(4, 5); err == nil {
		smalls = append(smalls, struct {
			name, instance string
			design         *core.Design
		}{"tokenring-path", "N=4 K=5", inst.Design})
	}
	if inst, err := spanningtree.New(spanningtree.Complete(4)); err == nil {
		smalls = append(smalls, struct {
			name, instance string
			design         *core.Design
		}{"spanningtree", "K4", inst.Design})
	}
	if inst, err := reset.New(diffusing.Chain(3)); err == nil {
		smalls = append(smalls, struct {
			name, instance string
			design         *core.Design
		}{"reset", "chain N=3", inst.Design})
	}
	if inst, err := termination.New(diffusing.Star(4)); err == nil {
		smalls = append(smalls, struct {
			name, instance string
			design         *core.Design
		}{"termination", "star N=4", inst.Design})
	}
	for _, s := range smalls {
		res, err := s.design.Verify(verify.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(s.name, s.instance, "exact (all unfair schedules)",
			verdict(res.Unfair.Converges),
			fmt.Sprintf("worst %d steps", res.Unfair.WorstSteps))
	}

	// At scale: greedy violation-maximizing daemon, 30 corrupted starts.
	bigs := []struct {
		name, instance string
		p              *program.Program
		S              *program.Predicate
		preds          []*program.Predicate
	}{}
	if inst, err := diffusing.New(diffusing.Binary(127)); err == nil {
		var preds []*program.Predicate
		for _, c := range inst.Design.Set.Constraints {
			preds = append(preds, c.Pred)
		}
		bigs = append(bigs, struct {
			name, instance string
			p              *program.Program
			S              *program.Predicate
			preds          []*program.Predicate
		}{"diffusing", "binary N=127", inst.Design.TolerantProgram(), inst.Design.S, preds})
	}
	if inst, err := tokenring.NewRing(63, 65); err == nil {
		bigs = append(bigs, struct {
			name, instance string
			p              *program.Program
			S              *program.Predicate
			preds          []*program.Predicate
		}{"tokenring-ring", "N=63 K=65", inst.P, inst.S, []*program.Predicate{inst.S}})
	}
	if inst, err := spanningtree.New(spanningtree.Grid(6, 6)); err == nil {
		var preds []*program.Predicate
		for _, c := range inst.Design.Set.Constraints {
			preds = append(preds, c.Pred)
		}
		bigs = append(bigs, struct {
			name, instance string
			p              *program.Program
			S              *program.Predicate
			preds          []*program.Predicate
		}{"spanningtree", "grid 6x6", inst.Design.TolerantProgram(), inst.Design.S, preds})
	}
	for _, b := range bigs {
		d := daemon.NewAdversarial("max-violations", daemon.ViolationMetric(b.preds))
		r := &sim.Runner{P: b.p, S: b.S, D: d, MaxSteps: 5_000_000, StopAtS: true}
		rng := rand.New(rand.NewSource(17))
		batch := r.RunMany(30, rng, sim.RandomStates(b.p.Schema))
		s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
		t.AddRow(b.name, b.instance, "greedy adversary, 30 runs",
			verdict(batch.ConvergenceRate() == 1),
			fmt.Sprintf("mean %.0f, max %.0f steps", s.Mean, s.Max))
	}
	t.Note("exact rows subsume every unfair schedule; adversary rows stress large instances")
	return t, nil
}
