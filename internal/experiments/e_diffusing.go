package experiments

import (
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "E3",
		Title:    "Diffusing computation: Theorem 1 validation + exact stabilization",
		PaperRef: "Section 5.1 design, Theorem 1",
		Run:      runE3,
	})
	register(&Experiment{
		ID:       "E4",
		Title:    "Fault-free wave behaviour (red descent, green reflection, repetition)",
		PaperRef: "Section 5.1 specification",
		Run:      runE4,
	})
	register(&Experiment{
		ID:       "E5",
		Title:    "Convergence after corrupting any number of nodes, vs N and shape",
		PaperRef: "Section 5.1 fault model",
		Run:      runE5,
	})
}

// runE3 model-checks the headline Section 5.1 claim exactly on small trees.
func runE3() (*metrics.Table, error) {
	t := metrics.NewTable("E3: diffusing computation is stabilizing (Theorem 1 + model checker)",
		"tree", "N", "theorem 1", "closure", "unfair conv", "worst steps", "mean steps", "|T∧¬S|")
	cases := []struct {
		name string
		tr   diffusing.Tree
	}{
		{"chain", diffusing.Chain(3)},
		{"chain", diffusing.Chain(5)},
		{"chain", diffusing.Chain(7)},
		{"star", diffusing.Star(5)},
		{"star", diffusing.Star(7)},
		{"binary", diffusing.Binary(7)},
		{"random(seed 11)", diffusing.Random(7, 11)},
		{"random(seed 12)", diffusing.Random(8, 12)},
	}
	for _, c := range cases {
		inst, err := diffusing.New(c.tr)
		if err != nil {
			return nil, err
		}
		r, _, err := inst.Design.Validate(verify.Projected, verify.Options{})
		if err != nil {
			return nil, err
		}
		res, err := inst.Design.Verify(verify.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, fmt.Sprintf("%d", c.tr.N()),
			verdict(r != nil),
			verdict(res.Closure == nil),
			verdict(res.Unfair.Converges),
			fmt.Sprintf("%d", res.Unfair.WorstSteps),
			fmt.Sprintf("%.2f", res.Unfair.MeanSteps),
			fmt.Sprintf("%d", res.Unfair.StatesOutsideS))
	}
	t.Note("unfair convergence confirms the Section 8 remark: fairness is unnecessary here")
	return t, nil
}

// runE4 measures the fault-free wave: cycles complete, every cycle spans
// all nodes, and no convergence action ever fires.
func runE4() (*metrics.Table, error) {
	t := metrics.NewTable("E4: fault-free wave behaviour (round-robin daemon)",
		"tree", "N", "steps", "cycles", "full cycles", "steps/cycle", "conv actions fired")
	for _, n := range []int{15, 63, 255, 1023} {
		inst, err := diffusing.New(diffusing.Binary(n))
		if err != nil {
			return nil, err
		}
		p := inst.Design.TolerantProgram()
		obs := diffusing.NewWaveObserver(inst)
		steps := 40 * n
		r := &sim.Runner{
			P: p, S: inst.Design.S,
			D:        daemon.NewRoundRobin(p),
			MaxSteps: steps,
			OnStep:   func(_ int, st *program.State, _ *program.Action) { obs.Observe(st) },
		}
		res := r.Run(inst.AllGreen(), nil)
		perCycle := "-"
		if obs.Cycles > 0 {
			perCycle = fmt.Sprintf("%.1f", float64(res.TotalSteps)/float64(obs.Cycles))
		}
		t.AddRow("binary", fmt.Sprintf("%d", n), fmt.Sprintf("%d", res.TotalSteps),
			fmt.Sprintf("%d", obs.Cycles), fmt.Sprintf("%d", obs.FullCycles),
			perCycle, fmt.Sprintf("%d", res.ActionCounts[program.Convergence]))
	}
	t.Note("every completed cycle spans all N nodes; zero convergence actions confirms closure")
	t.Note("steps/cycle grows linearly in N: each wave is one descent plus one reflection")
	return t, nil
}

// runE5 measures recovery cost from arbitrary corruption across sizes,
// shapes and daemons.
func runE5() (*metrics.Table, error) {
	t := metrics.NewTable("E5: convergence steps after corrupting all nodes (100 runs each)",
		"tree", "N", "depth", "daemon", "mean", "p95", "max")
	type cse struct {
		name string
		tr   diffusing.Tree
	}
	cases := []cse{
		{"binary", diffusing.Binary(15)},
		{"binary", diffusing.Binary(63)},
		{"binary", diffusing.Binary(255)},
		{"chain", diffusing.Chain(63)},
		{"star", diffusing.Star(63)},
		{"random(seed 5)", diffusing.Random(63, 5)},
	}
	for _, c := range cases {
		inst, err := diffusing.New(c.tr)
		if err != nil {
			return nil, err
		}
		p := inst.Design.TolerantProgram()
		var preds []*program.Predicate
		for _, cst := range inst.Design.Set.Constraints {
			preds = append(preds, cst.Pred)
		}
		daemons := []daemon.Daemon{
			daemon.NewRoundRobin(p),
			daemon.NewRandom(42),
			daemon.NewAdversarial("adversarial", daemon.ViolationMetric(preds)),
		}
		for _, d := range daemons {
			r := &sim.Runner{P: p, S: inst.Design.S, D: d, MaxSteps: 4_000_000, StopAtS: true}
			rng := rand.New(rand.NewSource(7))
			batch := r.RunMany(100, rng, sim.CorruptedStates(inst.AllGreen(),
				&fault.CorruptGroups{Groups: inst.Groups}))
			if batch.ConvergenceRate() != 1 {
				return nil, fmt.Errorf("E5: %s/%s converged %.2f", c.name, d.Name(), batch.ConvergenceRate())
			}
			s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
			t.AddRow(c.name, fmt.Sprintf("%d", c.tr.N()), fmt.Sprintf("%d", c.tr.Depth()),
				d.Name(),
				fmt.Sprintf("%.1f", s.Mean), fmt.Sprintf("%.1f", s.P95), fmt.Sprintf("%.0f", s.Max))
		}
	}
	t.Note("all 100 runs converged in every row (rate 1.0); cost scales with N and depth")
	return t, nil
}
