// Package experiments regenerates every claim of the paper as a numbered
// experiment with a printable table, per the index in DESIGN.md and the
// recorded results in EXPERIMENTS.md. The paper is a design-methodology
// paper whose "evaluation" is the set of formal claims made by its
// theorems and worked designs; each experiment validates one claim by
// machine-checking the theorem's antecedents, model-checking ground truth
// exactly on small instances, and measuring convergence behaviour
// statistically at scale.
//
// All experiments are deterministic: fixed seeds drive every random
// choice.
package experiments

import (
	"fmt"
	"sort"

	"nonmask/internal/metrics"
)

// Experiment is one reproducible paper claim.
type Experiment struct {
	// ID is the experiment identifier (E1..E10, A1..A3).
	ID string
	// Title is a one-line description.
	Title string
	// PaperRef cites the claim's source in the paper.
	PaperRef string
	// Run regenerates the experiment's table.
	Run func() (*metrics.Table, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order: paper experiments (E*), then
// ablations (A*), then extensions (X*), numerically within each group.
func All() []*Experiment {
	rank := func(id string) int {
		switch id[0] {
		case 'E':
			return 0
		case 'A':
			return 1
		default:
			return 2
		}
	}
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].ID, out[j].ID
		if rank(a) != rank(b) {
			return rank(a) < rank(b)
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// ByID finds one experiment.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q", id)
	}
	return e, nil
}

// verdict renders a boolean as the table-friendly yes/NO convention
// (capitals draw the eye to failures).
func verdict(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
