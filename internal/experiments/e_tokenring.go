package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/metrics"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "E7",
		Title:    "Token ring: Theorem 3 validation + exact stabilization",
		PaperRef: "Section 7.1 design, Theorem 3",
		Run:      runE7,
	})
	register(&Experiment{
		ID:       "E8",
		Title:    "K-state crossover: smallest stabilizing counter space",
		PaperRef: "Section 7.1 (the ring is due to Dijkstra [9])",
		Run:      runE8,
	})
}

// runE7 validates the layered path design by Theorem 3 and model-checks
// both the path and ring variants; large rings are measured by simulation.
func runE7() (*metrics.Table, error) {
	t := metrics.NewTable("E7: token ring stabilization",
		"variant", "N", "K", "theorem 3", "unfair conv", "worst steps", "mean steps")
	for _, tc := range []struct{ n, k int }{{2, 3}, {3, 4}, {4, 5}} {
		inst, err := tokenring.NewPath(tc.n, tc.k)
		if err != nil {
			return nil, err
		}
		r, _, err := inst.Design.Validate(verify.Exhaustive, verify.Options{})
		if err != nil {
			return nil, err
		}
		res, err := inst.Design.Verify(verify.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow("path", fmt.Sprintf("%d", tc.n), fmt.Sprintf("%d", tc.k),
			verdict(r != nil && r.Theorem == 3),
			verdict(res.Unfair.Converges),
			fmt.Sprintf("%d", res.Unfair.WorstSteps),
			fmt.Sprintf("%.2f", res.Unfair.MeanSteps))
	}
	for _, tc := range []struct{ n, k int }{{2, 4}, {3, 5}, {4, 6}, {5, 7}} {
		inst, err := tokenring.NewRing(tc.n, tc.k)
		if err != nil {
			return nil, err
		}
		rep, err := verify.Check(context.Background(), inst.P, inst.S, nil)
		if err != nil {
			return nil, err
		}
		res := rep.Unfair
		t.AddRow("ring", fmt.Sprintf("%d", tc.n), fmt.Sprintf("%d", tc.k),
			"n/a",
			verdict(res.Converges),
			fmt.Sprintf("%d", res.WorstSteps),
			fmt.Sprintf("%.2f", res.MeanSteps))
	}
	// Large rings: simulated convergence from random states.
	for _, n := range []int{31, 127, 511} {
		inst, err := tokenring.NewRing(n, n+2)
		if err != nil {
			return nil, err
		}
		r := &sim.Runner{
			P: inst.P, S: inst.S,
			D:        daemon.NewRandom(9),
			MaxSteps: 20_000_000,
			StopAtS:  true,
		}
		rng := rand.New(rand.NewSource(3))
		batch := r.RunMany(30, rng, sim.RandomStates(inst.P.Schema))
		if batch.ConvergenceRate() != 1 {
			return nil, fmt.Errorf("E7: ring N=%d converged %.2f", n, batch.ConvergenceRate())
		}
		s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
		t.AddRow("ring(sim)", fmt.Sprintf("%d", n), fmt.Sprintf("%d", n+2), "n/a", "yes",
			fmt.Sprintf("<=%.0f", s.Max), fmt.Sprintf("%.1f", s.Mean))
	}
	t.Note("path rows: the paper's layered design; ring rows: the printed mod-K program")
	t.Note("Theorem 3 column checks all four antecedents plus the target refinement")
	return t, nil
}

// runE8 finds, exactly, the smallest K for which the N+1-node ring
// stabilizes, by model checking every (N, K) pair.
func runE8() (*metrics.Table, error) {
	t := metrics.NewTable("E8: smallest stabilizing K per ring size (exact, model-checked)",
		"nodes (N+1)", "K=2", "K=3", "K=4", "K=5", "K=6", "K=7", "min stabilizing K")
	for n := 2; n <= 5; n++ {
		row := []string{fmt.Sprintf("%d", n+1)}
		minK := -1
		for k := 2; k <= 7; k++ {
			inst, err := tokenring.NewRing(n, k)
			if err != nil {
				return nil, err
			}
			rep, err := verify.Check(context.Background(), inst.P, inst.S, nil)
			if err != nil {
				return nil, err
			}
			res := rep.Unfair
			cell := "conv"
			if !res.Converges {
				cell = "livelock"
			} else if minK < 0 {
				minK = k
			}
			row = append(row, cell)
		}
		row = append(row, fmt.Sprintf("%d", minK))
		t.AddRow(row...)
	}
	t.Note("Dijkstra's guarantee: K at least the node count stabilizes; the exact")
	t.Note("crossover found here is the classical K >= nodes-1 threshold")
	return t, nil
}
