package experiments

import (
	"context"
	"fmt"

	"nonmask/internal/metrics"
	"nonmask/internal/protocols/fourstate"
	"nonmask/internal/protocols/threestate"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "X3",
		Title:    "Extension: all three Dijkstra algorithms of citation [9]",
		PaperRef: "Section 7.1's citation [9] (Dijkstra 1974)",
		Run:      runX3,
	})
}

// runX3 contrasts the three token algorithms of the paper's citation [9]:
// the K-state ring (Section 7.1; state space grows with ring size), the
// four-state machines, and the three-state machines (constant state per
// machine). All are model-checked exactly.
func runX3() (*metrics.Table, error) {
	t := metrics.NewTable("X3: Dijkstra's K-state, four-state and three-state machines (exact)",
		"algorithm", "machines", "states/machine", "total states", "stabilizes", "worst steps", "mean steps")
	for n := 2; n <= 6; n++ {
		ring, err := tokenring.NewRing(n, n+1)
		if err != nil {
			return nil, err
		}
		rep, err := verify.Check(context.Background(), ring.P, ring.S, nil)
		if err != nil {
			return nil, err
		}
		res := rep.Unfair
		t.AddRow("K-state ring", fmt.Sprintf("%d", n+1), fmt.Sprintf("%d", n+1),
			fmt.Sprintf("%d", rep.Space.Count), verdict(res.Converges),
			fmt.Sprintf("%d", res.WorstSteps), fmt.Sprintf("%.2f", res.MeanSteps))
	}
	for n := 2; n <= 8; n++ {
		arr, err := fourstate.New(n)
		if err != nil {
			return nil, err
		}
		rep, err := verify.Check(context.Background(), arr.P, arr.S, nil)
		if err != nil {
			return nil, err
		}
		res := rep.Unfair
		t.AddRow("four-state", fmt.Sprintf("%d", n+1), "4 (2 at ends)",
			fmt.Sprintf("%d", rep.Space.Count), verdict(res.Converges),
			fmt.Sprintf("%d", res.WorstSteps), fmt.Sprintf("%.2f", res.MeanSteps))
	}
	for n := 2; n <= 8; n++ {
		arr, err := threestate.New(n)
		if err != nil {
			return nil, err
		}
		rep, err := verify.Check(context.Background(), arr.P, arr.S, nil)
		if err != nil {
			return nil, err
		}
		res := rep.Unfair
		t.AddRow("three-state", fmt.Sprintf("%d", n+1), "3",
			fmt.Sprintf("%d", rep.Space.Count), verdict(res.Converges),
			fmt.Sprintf("%d", res.WorstSteps), fmt.Sprintf("%.2f", res.MeanSteps))
	}
	t.Note("all three algorithms are from the paper's citation [9]; the bidirectional")
	t.Note("forms trade token travel up and down the line for constant per-machine state")
	return t, nil
}
