package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "X2",
		Title:    "Extension: availability under continuous faults",
		PaperRef: "Section 1/3 (nonmasking = input-output relation violated only temporarily)",
		Run:      runX2,
	})
}

// distRow formats the availability probe's distance columns; instances
// beyond enumeration carry no distance observable and print "-".
func distRow(st sim.AvailabilityStats) (mean, max string) {
	if !st.DistanceMeasured {
		return "-", "-"
	}
	return fmt.Sprintf("%.2f", st.MeanDistance), fmt.Sprintf("%d", st.MaxDistance)
}

// runX2 quantifies "violated only temporarily": with faults arriving at
// rate p per step, what fraction of time does the invariant hold, and how
// far from the invariant does the system sit while violated? On the
// enumerable instance the distance columns use the verifier's exact
// shortest-path table — the same observable csverify -measure profiles —
// so the sampled numbers compare directly with the exact distance profile.
func runX2() (*metrics.Table, error) {
	t := metrics.NewTable("X2: fraction of steps with S holding, under continuous single-node faults",
		"protocol", "nodes", "fault rate", "availability", "mean dist", "max dist", "faults injected")
	rates := []float64{0, 0.001, 0.005, 0.02, 0.05}

	{
		inst, err := diffusing.New(diffusing.Binary(31))
		if err != nil {
			return nil, err
		}
		p := inst.Design.TolerantProgram()
		for _, rate := range rates {
			r := &sim.Runner{
				P: p, S: inst.Design.S,
				D:            daemon.NewRoundRobin(p),
				MaxSteps:     60_000,
				FaultRate:    rate,
				RateInjector: &fault.CorruptGroups{Groups: inst.Groups, K: 1},
			}
			rng := rand.New(rand.NewSource(41))
			st := r.Availability(inst.AllGreen(), rng)
			mean, max := distRow(st)
			t.AddRow("diffusing", "31", fmt.Sprintf("%.3f", rate),
				fmt.Sprintf("%.3f", st.Availability), mean, max, fmt.Sprintf("%d", st.FaultsInjected))
		}
	}
	{
		inst, err := tokenring.NewRing(15, 17)
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			r := &sim.Runner{
				P: inst.P, S: inst.S,
				D:            daemon.NewRoundRobin(inst.P),
				MaxSteps:     60_000,
				FaultRate:    rate,
				RateInjector: &fault.CorruptGroups{Groups: inst.Groups, K: 1},
			}
			rng := rand.New(rand.NewSource(42))
			st := r.Availability(inst.AllZero(), rng)
			mean, max := distRow(st)
			t.AddRow("token ring", "16", fmt.Sprintf("%.3f", rate),
				fmt.Sprintf("%.3f", st.Availability), mean, max, fmt.Sprintf("%d", st.FaultsInjected))
		}
	}
	{
		// Small enumerable ring: wire the exact shortest-path table so the
		// distance columns report the checker's observable, not a heuristic.
		inst, err := tokenring.NewRing(3, 5)
		if err != nil {
			return nil, err
		}
		sp, err := verify.NewSpaceContext(context.Background(), inst.P, inst.S, program.True(), verify.Options{})
		if err != nil {
			return nil, err
		}
		dist, err := sp.DistancesContext(context.Background())
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			r := &sim.Runner{
				P: inst.P, S: inst.S,
				D:            daemon.NewRoundRobin(inst.P),
				MaxSteps:     60_000,
				FaultRate:    rate,
				RateInjector: &fault.CorruptGroups{Groups: inst.Groups, K: 1},
				Distance: func(st *program.State) int {
					return int(dist[inst.P.Schema.Index(st)])
				},
			}
			rng := rand.New(rand.NewSource(43))
			st := r.Availability(inst.AllZero(), rng)
			mean, max := distRow(st)
			t.AddRow("token ring", "4", fmt.Sprintf("%.3f", rate),
				fmt.Sprintf("%.3f", st.Availability), mean, max, fmt.Sprintf("%d", st.FaultsInjected))
		}
	}
	t.Note("availability = fraction of 60k observed steps satisfying S; single-node")
	t.Note("corruption per fault; degradation is graceful — the nonmasking guarantee at work")
	t.Note("distance columns: exact shortest-path steps to S (verify.DistancesContext) on the")
	t.Note("enumerable 4-node ring; '-' where the instance exceeds enumeration")
	return t, nil
}
