package experiments

import (
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/fault"
	"nonmask/internal/metrics"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
)

func init() {
	register(&Experiment{
		ID:       "X2",
		Title:    "Extension: availability under continuous faults",
		PaperRef: "Section 1/3 (nonmasking = input-output relation violated only temporarily)",
		Run:      runX2,
	})
}

// runX2 quantifies "violated only temporarily": with faults arriving at
// rate p per step, what fraction of time does the invariant hold? The
// availability curve is the practical content of nonmasking tolerance —
// availability degrades smoothly with fault rate instead of collapsing.
func runX2() (*metrics.Table, error) {
	t := metrics.NewTable("X2: fraction of steps with S holding, under continuous single-node faults",
		"protocol", "nodes", "fault rate", "availability", "faults injected")
	rates := []float64{0, 0.001, 0.005, 0.02, 0.05}

	{
		inst, err := diffusing.New(diffusing.Binary(31))
		if err != nil {
			return nil, err
		}
		p := inst.Design.TolerantProgram()
		for _, rate := range rates {
			r := &sim.Runner{
				P: p, S: inst.Design.S,
				D:            daemon.NewRoundRobin(p),
				MaxSteps:     60_000,
				FaultRate:    rate,
				RateInjector: &fault.CorruptGroups{Groups: inst.Groups, K: 1},
			}
			rng := rand.New(rand.NewSource(41))
			avail, faults := r.Availability(inst.AllGreen(), rng)
			t.AddRow("diffusing", "31", fmt.Sprintf("%.3f", rate),
				fmt.Sprintf("%.3f", avail), fmt.Sprintf("%d", faults))
		}
	}
	{
		inst, err := tokenring.NewRing(15, 17)
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			r := &sim.Runner{
				P: inst.P, S: inst.S,
				D:            daemon.NewRoundRobin(inst.P),
				MaxSteps:     60_000,
				FaultRate:    rate,
				RateInjector: &fault.CorruptGroups{Groups: inst.Groups, K: 1},
			}
			rng := rand.New(rand.NewSource(42))
			avail, faults := r.Availability(inst.AllZero(), rng)
			t.AddRow("token ring", "16", fmt.Sprintf("%.3f", rate),
				fmt.Sprintf("%.3f", avail), fmt.Sprintf("%d", faults))
		}
	}
	t.Note("availability = fraction of 60k observed steps satisfying S; single-node")
	t.Note("corruption per fault; degradation is graceful — the nonmasking guarantee at work")
	return t, nil
}
