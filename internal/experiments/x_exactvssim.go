package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	catalog "nonmask/internal/protocols/registry"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "X5",
		Title:    "Extension: exact vs sampled stabilization time",
		PaperRef: "Section 8 remark (fairness unnecessary) + metrics engine cross-check",
		Run:      runX5,
	})
}

// runX5 cross-validates the metrics engine against simulation on
// enumerable instances: the sampled mean steps-to-converge under the
// random daemon (from uniformly random non-S states) should approach the
// engine's exact MeanExpectedSteps, and a single greedy run driven by
// the worst-case distance table from the table's argmax state should
// realize exactly WorstSteps. Disagreement in the first is sampling
// noise; disagreement in the second would be a bug in either engine.
func runX5() (*metrics.Table, error) {
	t := metrics.NewTable("X5: exact metrics engine vs cssim-style sampling",
		"instance", "observable", "exact", "sampled", "runs")
	ctx := context.Background()

	for _, tc := range []struct {
		protocol string
		params   catalog.Params
	}{
		{"tokenring-ring", catalog.Params{N: 3, K: 5}},
		{"diffusing", catalog.Params{N: 7, Tree: "binary"}},
	} {
		inst, err := catalog.Build(tc.protocol, tc.params)
		if err != nil {
			return nil, err
		}
		p, S := inst.Program, inst.S
		rep, err := verify.Check(ctx, p, S, inst.T, verify.WithMetrics())
		if err != nil {
			return nil, err
		}
		m := rep.Metrics

		// Sampled expectation: the random daemon picks uniformly among
		// enabled actions — the same process the value iteration models.
		// Condition on starting outside S, matching MeanExpectedSteps.
		const runs = 4000
		rng := rand.New(rand.NewSource(7))
		r := &sim.Runner{P: p, S: S, D: daemon.NewRandom(7), MaxSteps: 100_000, StopAtS: true}
		total, n := 0, 0
		for n < runs {
			st := program.RandomState(p.Schema, rng)
			if S.Holds(st) {
				continue
			}
			res := r.Run(st, rng)
			if !res.Converged {
				return nil, fmt.Errorf("%s: sampled run did not converge", inst.Name)
			}
			total += res.Steps
			n++
		}
		t.AddRow(inst.Name, "expected steps (mean over ¬S)",
			fmt.Sprintf("%.3f", m.MeanExpectedSteps),
			fmt.Sprintf("%.3f", float64(total)/float64(n)),
			fmt.Sprintf("%d", n))

		// Sampled worst case: greedy ascent on the exact worst-distance
		// table from its argmax state reproduces the adversarial schedule.
		worst, ok := rep.Space.WorstDistances()
		if !ok {
			return nil, fmt.Errorf("%s: no worst-distance table on a convergent instance", inst.Name)
		}
		argmax := int64(0)
		for i, d := range worst {
			if d > worst[argmax] {
				argmax = int64(i)
			}
		}
		wr := &sim.Runner{
			P: p, S: S,
			D:        daemon.NewWorstCase(p.Schema, worst),
			MaxSteps: 100_000, StopAtS: true,
		}
		res := wr.Run(rep.Space.State(argmax), rng)
		t.AddRow(inst.Name, "worst-case steps",
			fmt.Sprintf("%d", m.WorstSteps), fmt.Sprintf("%d", res.Steps), "1")
	}

	t.Note("exact: verify.MetricsContext (value iteration / variant fixpoint);")
	t.Note("sampled: sim under the random resp. worst-case-greedy daemon.")
	t.Note("the worst-case rows must agree exactly; the expectation rows agree")
	t.Note("to sampling noise — the cross-check behind EXPERIMENTS' claim that")
	t.Note("cssim numbers are comparable with csverify -measure")
	return t, nil
}
