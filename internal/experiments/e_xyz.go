package experiments

import (
	"context"
	"fmt"

	"nonmask/internal/constraint"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/xyz"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "E1",
		Title:    "Constraint graph of {x != y, x <= z} (the paper's figure)",
		PaperRef: "Section 4, inline figure",
		Run:      runE1,
	})
	register(&Experiment{
		ID:       "E2",
		Title:    "Convergence of the alternative xyz designs",
		PaperRef: "Sections 4 and 6, running example",
		Run:      runE2,
	})
	register(&Experiment{
		ID:       "E6",
		Title:    "Self-looping graphs: linear order decides convergence",
		PaperRef: "Theorem 2 and the Section 6 examples",
		Run:      runE6,
	})
}

// runE1 reconstructs the Section 4 constraint-graph figure from the
// preferred convergence actions and reports its out-tree structure.
func runE1() (*metrics.Table, error) {
	inst, err := xyz.New(xyz.OutTree)
	if err != nil {
		return nil, err
	}
	cg, err := constraint.BuildGraph(inst.Design.Set.Constraints)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E1: constraint graph of {x != y, x <= z} (paper Section 4 figure)",
		"edge", "from", "to", "constraint")
	schema := inst.Design.Schema
	for i, e := range cg.G.Edges() {
		t.AddRow(fmt.Sprintf("%d", i),
			cg.NodeLabel(schema, e.From),
			cg.NodeLabel(schema, e.To),
			cg.Constraints[e.Label].Name())
	}
	root, isTree := cg.IsOutTree()
	t.Note("out-tree: %s (root %s) — matches the paper's figure",
		verdict(isTree), cg.NodeLabel(schema, root))
	ranks, _ := cg.Ranks()
	t.Note("node ranks (Theorem 1 proof metric): %v", ranks)
	return t, nil
}

// runE2 contrasts the three designs: which theorem validates each, and the
// exact convergence ground truth under unfair and fair daemons.
func runE2() (*metrics.Table, error) {
	t := metrics.NewTable("E2: the xyz designs (paper Sections 4 and 6)",
		"design", "validated by", "unfair conv", "fair conv", "worst steps", "mean steps")
	for _, v := range xyz.Variants() {
		inst, err := xyz.New(v)
		if err != nil {
			return nil, err
		}
		r, _, err := inst.Design.Validate(verify.Exhaustive, verify.Options{})
		if err != nil {
			return nil, err
		}
		theorem := "none"
		if r != nil {
			theorem = r.Theorem.String()
		}
		res, err := inst.Design.Verify(verify.Options{})
		if err != nil {
			return nil, err
		}
		fair := res.Unfair.Converges
		if !fair && res.FairOnly != nil {
			fair = res.FairOnly.Converges
		}
		worst, mean := "-", "-"
		if res.Unfair.Converges {
			worst = fmt.Sprintf("%d", res.Unfair.WorstSteps)
			mean = fmt.Sprintf("%.2f", res.Unfair.MeanSteps)
		}
		t.AddRow(v.String(), theorem, verdict(res.Unfair.Converges), verdict(fair), worst, mean)
	}
	t.Note("paper claim: the interfering design can violate constraints forever; the out-tree")
	t.Note("design (Thm 1) and the ordered shared-target design (Thm 2) converge")
	return t, nil
}

// runE6 isolates Theorem 2's third antecedent: the same shared-target
// shape converges exactly when a linear order exists.
func runE6() (*metrics.Table, error) {
	t := metrics.NewTable("E6: shared-target convergence actions (paper Section 6)",
		"design", "graph self-looping", "linear order", "unfair conv", "fair conv")

	type row struct {
		name string
		cs   []*constraint.Constraint
		sch  *program.Schema
	}
	rows := []row{orderedPair(), mutualPair()}
	for _, r := range rows {
		cg, err := constraint.BuildGraph(r.cs)
		if err != nil {
			return nil, err
		}
		// Does a linear order exist? Probe via Theorem 2's precedence
		// criterion: for the two-action case, check mutual violation.
		ctx := context.Background()
		p01, err := verify.CheckPreservesContext(ctx, r.sch, r.cs[0].Action, r.cs[1].Pred, nil, verify.Options{})
		if err != nil {
			return nil, err
		}
		p10, err := verify.CheckPreservesContext(ctx, r.sch, r.cs[1].Action, r.cs[0].Pred, nil, verify.Options{})
		if err != nil {
			return nil, err
		}
		hasOrder := p01.Preserves || p10.Preserves

		p := program.New(r.name, r.sch)
		p.Add(r.cs[0].Action, r.cs[1].Action)
		S := program.And("S", r.cs[0].Pred, r.cs[1].Pred)
		rep, err := verify.Check(ctx, p, S, nil)
		if err != nil {
			return nil, err
		}
		unfair := rep.Unfair.Converges
		fair := unfair || rep.Fair.Converges
		t.AddRow(r.name, verdict(cg.IsSelfLooping()), verdict(hasOrder),
			verdict(unfair), verdict(fair))
	}
	t.Note("the linear order column is Theorem 2's third antecedent; it exactly separates")
	t.Note("the convergent design from the livelocking one")
	return t, nil
}

// orderedPair is the Section 6 positive example, reconstructed standalone:
// both actions write c, but each raise preserves the other's constraint.
func orderedPair() struct {
	name string
	cs   []*constraint.Constraint
	sch  *program.Schema
} {
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 4))
	b := s.MustDeclare("b", program.IntRange(0, 4))
	c := s.MustDeclare("c", program.IntRange(0, 4))
	geA := program.NewPredicate("c>=a", []program.VarID{a, c},
		func(st *program.State) bool { return st.Get(c) >= st.Get(a) })
	geB := program.NewPredicate("c>=b", []program.VarID{b, c},
		func(st *program.State) bool { return st.Get(c) >= st.Get(b) })
	fixA := program.NewAction("raise-to-a", program.Convergence,
		[]program.VarID{a, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) < st.Get(a) },
		func(st *program.State) { st.Set(c, st.Get(a)) })
	fixB := program.NewAction("raise-to-b", program.Convergence,
		[]program.VarID{b, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) < st.Get(b) },
		func(st *program.State) { st.Set(c, st.Get(b)) })
	return struct {
		name string
		cs   []*constraint.Constraint
		sch  *program.Schema
	}{"ordered (raises)", []*constraint.Constraint{
		{Pred: geA, Action: fixA}, {Pred: geB, Action: fixB}}, s}
}

// mutualPair is the negative example: each action can violate the other's
// constraint, so no order exists and the pair livelocks.
func mutualPair() struct {
	name string
	cs   []*constraint.Constraint
	sch  *program.Schema
} {
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 4))
	b := s.MustDeclare("b", program.IntRange(0, 4))
	c := s.MustDeclare("c", program.IntRange(0, 4))
	eqA := program.NewPredicate("c=a", []program.VarID{a, c},
		func(st *program.State) bool { return st.Get(c) == st.Get(a) })
	eqB := program.NewPredicate("c=b", []program.VarID{b, c},
		func(st *program.State) bool { return st.Get(c) == st.Get(b) })
	fixA := program.NewAction("copy-a", program.Convergence,
		[]program.VarID{a, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) != st.Get(a) },
		func(st *program.State) { st.Set(c, st.Get(a)) })
	fixB := program.NewAction("copy-b", program.Convergence,
		[]program.VarID{b, c}, []program.VarID{c},
		func(st *program.State) bool { return st.Get(c) != st.Get(b) },
		func(st *program.State) { st.Set(c, st.Get(b)) })
	return struct {
		name string
		cs   []*constraint.Constraint
		sch  *program.Schema
	}{"mutual (copies)", []*constraint.Constraint{
		{Pred: eqA, Action: fixA}, {Pred: eqB, Action: fixB}}, s}
}
