package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"A1", "A2", "A3", "X1", "X2", "X3", "X4", "X5"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.PaperRef == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E1")
	if err != nil || e.ID != "E1" {
		t.Errorf("ByID(E1) = %v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("ByID(E99) succeeded")
	}
}

// The cheap exact experiments run in full as tests; the expensive
// simulation experiments (E4, E5, E9, E10, A3, X2) are exercised by the
// benchmark harness and cmd/csbench instead.
func TestCheapExperimentsProduceTables(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E6", "E7", "E8", "A1", "A2", "X1", "X3", "X4"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			out := tbl.String()
			if !strings.Contains(out, id+":") {
				t.Errorf("table title missing id:\n%s", out)
			}
			if len(tbl.Rows) == 0 {
				t.Error("table has no rows")
			}
			// E2 and E6 include the paper's negative examples, and X1's
			// expected unfair-daemon failure is the point; everywhere else
			// a NO is a regression.
			if id != "E2" && id != "E6" && id != "X1" && strings.Contains(out, "NO") {
				t.Errorf("experiment %s reports a failed verdict:\n%s", id, out)
			}
		})
	}
}

// TestE1MatchesPaperFigure pins the exact graph of the Section 4 figure.
func TestE1MatchesPaperFigure(t *testing.T) {
	e, _ := ByID("E1")
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"{x}", "{y}", "{z}", "x != y", "x <= z", "out-tree: yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 table missing %q:\n%s", want, out)
		}
	}
}

// TestE2Verdicts pins the three designs' verdict pattern.
func TestE2Verdicts(t *testing.T) {
	e, _ := ByID("E2")
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("E2 rows = %d", len(tbl.Rows))
	}
	// interfering: no theorem, no convergence.
	if tbl.Rows[0][1] != "none" || tbl.Rows[0][2] != "NO" {
		t.Errorf("interfering row = %v", tbl.Rows[0])
	}
	// out-tree: Theorem 1, converges.
	if !strings.Contains(tbl.Rows[1][1], "Theorem 1") || tbl.Rows[1][2] != "yes" {
		t.Errorf("out-tree row = %v", tbl.Rows[1])
	}
	// ordered: Theorem 2, converges.
	if !strings.Contains(tbl.Rows[2][1], "Theorem 2") || tbl.Rows[2][2] != "yes" {
		t.Errorf("ordered row = %v", tbl.Rows[2])
	}
}

// TestE6Separation pins the Section 6 separation: the ordered pair
// converges, the mutually-violating pair does not, and the linear-order
// column is exactly what separates them.
func TestE6Separation(t *testing.T) {
	e, _ := ByID("E6")
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("E6 rows = %d", len(tbl.Rows))
	}
	ordered, mutual := tbl.Rows[0], tbl.Rows[1]
	if ordered[2] != "yes" || ordered[3] != "yes" {
		t.Errorf("ordered row = %v", ordered)
	}
	if mutual[2] != "NO" || mutual[3] != "NO" || mutual[4] != "NO" {
		t.Errorf("mutual row = %v", mutual)
	}
}

// TestE8FindsCrossover pins the minimum stabilizing K column to be
// monotone and within Dijkstra's guarantee.
func TestE8FindsCrossover(t *testing.T) {
	e, _ := ByID("E8")
	tbl, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := 0
	for _, row := range tbl.Rows {
		minK := row[len(row)-1]
		if minK == "-1" {
			t.Fatalf("no stabilizing K found in row %v", row)
		}
		var k int
		if _, err := fmtSscan(minK, &k); err != nil {
			t.Fatalf("bad minK %q", minK)
		}
		if k < last {
			t.Errorf("min stabilizing K not monotone: %v", tbl.Rows)
		}
		last = k
	}
}

// fmtSscan isolates the fmt dependency for the single parse above.
func fmtSscan(s string, v *int) (int, error) {
	n := 0
	neg := false
	i := 0
	if len(s) > 0 && s[0] == '-' {
		neg = true
		i = 1
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, &parseErr{s}
		}
		n = n*10 + int(s[i]-'0')
	}
	if neg {
		n = -n
	}
	*v = n
	return 1, nil
}

type parseErr struct{ s string }

func (e *parseErr) Error() string { return "cannot parse " + e.s }
