package experiments

import (
	"fmt"
	"time"

	"nonmask/internal/metrics"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/runtime"
)

func init() {
	register(&Experiment{
		ID:       "E10",
		Title:    "Low-atomicity message-passing refinement still stabilizes",
		PaperRef: "Section 8 (refinement remark) and Section 7.1 (exercise)",
		Run:      runE10,
	})
}

// runE10 runs the goroutine-per-node refinements of the ring and the tree
// under increasing message loss, from fully corrupted starts.
func runE10() (*metrics.Table, error) {
	t := metrics.NewTable("E10: message-passing refinement (goroutine per node, lossy links)",
		"protocol", "nodes", "loss", "dup", "converged", "monitor updates")
	type cfg struct {
		loss, dup float64
	}
	cfgs := []cfg{{0, 0}, {0.1, 0.05}, {0.3, 0.2}}

	for _, c := range cfgs {
		net := runtime.NewNetwork(&runtime.RingProtocol{N: 15, K: 17}, runtime.Config{
			Seed:            21,
			LossProb:        c.loss,
			DupProb:         c.dup,
			RetransmitEvery: 200 * time.Microsecond,
		})
		net.Corrupt(16, runtime.CorruptRing(17))
		res := net.Run(20 * time.Second)
		t.AddRow("token ring", "16", pct(c.loss), pct(c.dup),
			verdict(res.Converged), fmt.Sprintf("%d", res.Updates))
	}
	for _, c := range cfgs {
		tr := diffusing.Binary(15)
		net := runtime.NewNetwork(runtime.NewTreeProtocol(tr.Parent), runtime.Config{
			Seed:            22,
			LossProb:        c.loss,
			DupProb:         c.dup,
			RetransmitEvery: 200 * time.Microsecond,
		})
		net.Corrupt(15, runtime.CorruptTree())
		res := net.Run(20 * time.Second)
		t.AddRow("diffusing tree", "15", pct(c.loss), pct(c.dup),
			verdict(res.Converged), fmt.Sprintf("%d", res.Updates))
	}
	t.Note("nodes read cached neighbor state only (low atomicity); periodic rebroadcast")
	t.Note("masks loss; convergence is detected by a monitor seeing 3N legitimate updates")
	return t, nil
}

func pct(f float64) string { return fmt.Sprintf("%d%%", int(f*100)) }
