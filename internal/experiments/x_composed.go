package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"nonmask/internal/daemon"
	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/composed"
	"nonmask/internal/protocols/spanningtree"
	"nonmask/internal/sim"
	"nonmask/internal/verify"
)

func init() {
	register(&Experiment{
		ID:       "X1",
		Title:    "Extension: wave over a dynamic spanning tree needs fairness",
		PaperRef: "Section 7 (convergence stairs) + Section 8 (fairness & refinement remarks)",
		Run:      runX1,
	})
}

// runX1 contrasts the paper's single-layer designs (which converge without
// fairness — E9) with the layered composition of a diffusing wave over a
// self-stabilizing spanning tree, where fairness becomes necessary: the
// wave can cycle legitimately while a corrupted region detached from the
// root's pointer structure never repairs.
func runX1() (*metrics.Table, error) {
	t := metrics.NewTable("X1: composition reintroduces the fairness requirement",
		"graph", "check", "verdict", "detail")
	for _, tc := range []struct {
		name string
		g    spanningtree.Graph
	}{
		{"line3", spanningtree.Line(3)},
		{"triangle", spanningtree.Complete(3)},
	} {
		inst, err := composed.New(tc.g)
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		rep, err := verify.Check(ctx, inst.P, inst.S, nil)
		if err != nil {
			return nil, err
		}
		unfair := rep.Unfair
		detail := "-"
		if !unfair.Converges && len(unfair.Cycle) > 0 {
			detail = fmt.Sprintf("wave-spin livelock through %d states", len(unfair.Cycle))
		}
		t.AddRow(tc.name, "arbitrary daemon", verdict(unfair.Converges)+" (expected NO)", detail)

		fair := rep.Fair
		if fair == nil {
			if fair, err = rep.Space.CheckFairConvergenceContext(ctx); err != nil {
				return nil, err
			}
		}
		t.AddRow(tc.name, "weakly fair daemon", verdict(fair.Converges), "-")

		stair, err := rep.Space.CheckStairContext(ctx, []*program.Predicate{inst.TreeOK}, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, "stair true→tree→S (fair)", verdict(stair.OK),
			fmt.Sprintf("%d stages", len(stair.Steps)))

		fixedRep, err := verify.Check(ctx, inst.P, inst.S, inst.TreeOK)
		if err != nil {
			return nil, err
		}
		stage2 := fixedRep.Unfair
		t.AddRow(tc.name, "stage 2 alone, arbitrary daemon", verdict(stage2.Converges),
			fmt.Sprintf("worst %d steps", stage2.WorstSteps))
	}

	// At scale under a fair schedule.
	inst, err := composed.New(spanningtree.Grid(5, 5))
	if err != nil {
		return nil, err
	}
	r := &sim.Runner{
		P: inst.P, S: inst.S,
		D:        daemon.NewRoundRobin(inst.P),
		MaxSteps: 2_000_000,
		StopAtS:  true,
	}
	rng := rand.New(rand.NewSource(13))
	batch := r.RunMany(30, rng, sim.RandomStates(inst.P.Schema))
	s := metrics.Summarize(metrics.IntsToFloats(batch.Steps))
	t.AddRow("grid5x5 (sim)", "round-robin, 30 random starts",
		verdict(batch.ConvergenceRate() == 1),
		fmt.Sprintf("mean %.0f, max %.0f steps", s.Mean, s.Max))

	t.Note("the paper's fixed-tree designs converge unfairly (E9); composing the wave with")
	t.Note("tree maintenance breaks that — exactly the Section 2 fairness assumption's role.")
	t.Note("once the tree stabilizes (stage 2), unfair convergence returns.")
	return t, nil
}
