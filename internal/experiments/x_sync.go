package experiments

import (
	"fmt"

	"nonmask/internal/metrics"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/fourstate"
	"nonmask/internal/protocols/threestate"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/sim"
)

func init() {
	register(&Experiment{
		ID:       "X4",
		Title:    "Extension: stabilization under the fully synchronous daemon",
		PaperRef: "Section 2 computation model (one action per step) — the opposite extreme",
		Run:      runX4,
	})
}

// runX4 asks a question the paper's interleaving model sidesteps: do the
// designs stabilize when EVERY enabled action fires simultaneously?
// Synchronous executions are deterministic, so the answer is exact: each
// state's successor chain either reaches S or cycles.
func runX4() (*metrics.Table, error) {
	t := metrics.NewTable("X4: fully synchronous daemon (every enabled action fires each round)",
		"protocol", "instance", "stabilizes", "worst rounds", "witness")

	add := func(name, instance string, p *program.Program, S *program.Predicate) error {
		res, err := sim.SyncExhaustive(p, S)
		if err != nil {
			return err
		}
		worst, witness := "-", "-"
		if res.Converges {
			worst = fmt.Sprintf("%d", res.WorstSteps)
		} else if res.CycleWitness != nil {
			witness = "synchronous cycle found"
		}
		t.AddRow(name, instance, verdict(res.Converges), worst, witness)
		return nil
	}

	for _, n := range []int{3, 5, 7} {
		inst, err := diffusing.New(diffusing.Chain(n))
		if err != nil {
			return nil, err
		}
		if err := add("diffusing", fmt.Sprintf("chain %d", n),
			inst.Design.TolerantProgram(), inst.Design.S); err != nil {
			return nil, err
		}
	}
	{
		inst, err := diffusing.New(diffusing.Binary(7))
		if err != nil {
			return nil, err
		}
		if err := add("diffusing", "binary 7",
			inst.Design.TolerantProgram(), inst.Design.S); err != nil {
			return nil, err
		}
	}
	for _, tc := range []struct{ n, k int }{{3, 5}, {4, 6}, {5, 7}} {
		inst, err := tokenring.NewRing(tc.n, tc.k)
		if err != nil {
			return nil, err
		}
		if err := add("K-state ring", fmt.Sprintf("N=%d K=%d", tc.n, tc.k),
			inst.P, inst.S); err != nil {
			return nil, err
		}
	}
	for _, n := range []int{3, 5, 7} {
		inst, err := threestate.New(n)
		if err != nil {
			return nil, err
		}
		if err := add("three-state", fmt.Sprintf("N=%d", n), inst.P, inst.S); err != nil {
			return nil, err
		}
	}
	for _, n := range []int{3, 5, 7} {
		inst, err := fourstate.New(n)
		if err != nil {
			return nil, err
		}
		if err := add("four-state", fmt.Sprintf("N=%d", n), inst.P, inst.S); err != nil {
			return nil, err
		}
	}
	t.Note("synchronous executions are deterministic; verdicts are exact over all states.")
	t.Note("Theorems 1-3 say nothing about this daemon — stabilization may genuinely fail")
	t.Note("here, and a negative verdict would be a finding about the algorithm itself")
	return t, nil
}
