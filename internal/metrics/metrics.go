// Package metrics provides the summary statistics and fixed-width table
// rendering used by the experiment harness (cmd/csbench and bench_test.go)
// to print paper-style result tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics over a sample of float64 observations.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Std        float64
	Median, P95, P99 float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s := Summary{
		N:   len(sorted),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	s.P99 = Percentile(sorted, 99)
	return s
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// IntsToFloats converts a sample of ints for Summarize.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Histogram counts observations into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count out-of-range observations.
	Under, Over int
}

// NewHistogram returns a histogram with the given bucket count; it panics
// when buckets < 1 or max <= min, which always indicates a caller bug.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets < 1 || max <= min {
		panic(fmt.Sprintf("metrics: invalid histogram [%v,%v)/%d", min, max, buckets))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, buckets)}
}

// Observe adds one observation.
func (h *Histogram) Observe(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard FP edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the total number of observations including out-of-range.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Table renders fixed-width experiment tables.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are appended under the table.
	Notes []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) *Table {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return t
}

// AddRowf appends a row of formatted cells. Each cell is a (format, value)
// application via fmt.Sprintf with exactly one verb per cell handled by the
// caller; use Cells helpers for common cases.
func (t *Table) AddRowf(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	return t.AddRow(row...)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
