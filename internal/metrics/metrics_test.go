package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("N/Min/Max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Median != 3 {
		t.Errorf("Median = %v, want 3", s.Median)
	}
	// Sample std of 1..5 is sqrt(2.5).
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Median != 7 || s.P95 != 7 || s.Std != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {50, 30}, {100, 50}, {25, 20}, {75, 40}, {12.5, 15},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestIntsToFloats(t *testing.T) {
	fs := IntsToFloats([]int{1, 2, 3})
	if len(fs) != 3 || fs[0] != 1 || fs[2] != 3 {
		t.Errorf("IntsToFloats = %v", fs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 100} {
		h.Observe(x)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(1, 0, 5) did not panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("E7: token ring", "N", "K", "worst steps")
	tbl.AddRow("3", "4", "17")
	tbl.AddRow("4", "5", "29")
	tbl.Note("K >= N+1 per Dijkstra")
	out := tbl.String()

	for _, want := range []string{"E7: token ring", "worst steps", "29", "note: K >= N+1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows + note
	if len(lines) != 6 {
		t.Errorf("table has %d lines, want 6:\n%s", len(lines), out)
	}
	// Columns align: header and rows have the same prefix width before "K".
	if !strings.Contains(lines[1], "N") || !strings.Contains(lines[2], "-") {
		t.Errorf("header/rule malformed:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRowf("x", 3.14159, 42)
	if tbl.Rows[0][0] != "x" || tbl.Rows[0][1] != "3.14" || tbl.Rows[0][2] != "42" {
		t.Errorf("AddRowf row = %v", tbl.Rows[0])
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRow("only")
	if len(tbl.Rows[0]) != 3 {
		t.Errorf("short row not padded: %v", tbl.Rows[0])
	}
}

// Property: the summary's order statistics bracket correctly.
func TestSummarizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true // skip pathological inputs
			}
			// Keep magnitudes small enough that the sum cannot overflow.
			xs[i] = math.Mod(x, 1e9)
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Median && s.Median <= s.P95 &&
			s.P95 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
