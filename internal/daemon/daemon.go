// Package daemon provides execution schedulers ("daemons" in the
// self-stabilization literature) for guarded-command programs. A daemon
// repeatedly picks one enabled action to execute — the paper's computations
// are exactly the fair maximal sequences a fair daemon produces
// (Section 2), while the Section 8 remark about fairness being unnecessary
// is tested with the unfair adversarial daemons defined here.
package daemon

import (
	"math/rand"

	"nonmask/internal/program"
)

// Daemon selects which enabled action executes next. Pick receives the
// current state, the enabled actions (non-empty, in program order), and the
// step number; it returns one element of enabled.
type Daemon interface {
	// Name identifies the daemon in reports.
	Name() string
	// Pick returns one of the enabled actions.
	Pick(st *program.State, enabled []*program.Action, step int) *program.Action
}

// RoundRobin cycles through the program's actions in program order,
// executing the first enabled action at or after its rotation cursor and
// advancing the cursor past it. It is weakly fair: an action that stays
// enabled is executed within one full rotation.
type RoundRobin struct {
	pos  map[*program.Action]int
	n    int
	next int
}

// NewRoundRobin returns a round-robin daemon over the program's actions.
func NewRoundRobin(p *program.Program) *RoundRobin {
	pos := make(map[*program.Action]int, len(p.Actions))
	for i, a := range p.Actions {
		pos[a] = i
	}
	return &RoundRobin{pos: pos, n: len(p.Actions)}
}

// Name implements Daemon.
func (d *RoundRobin) Name() string { return "round-robin" }

// Pick implements Daemon. Among the enabled actions it chooses the one
// whose program position is cyclically first at or after the cursor.
func (d *RoundRobin) Pick(st *program.State, enabled []*program.Action, step int) *program.Action {
	best := enabled[0]
	bestDist := d.n + 1
	for _, a := range enabled {
		p, ok := d.pos[a]
		if !ok {
			continue // foreign action (e.g. injected fault): lowest priority
		}
		dist := (p - d.next + d.n) % d.n
		if dist < bestDist {
			bestDist = dist
			best = a
		}
	}
	if p, ok := d.pos[best]; ok && d.n > 0 {
		d.next = (p + 1) % d.n
	}
	return best
}

// Random picks uniformly among the enabled actions using its own seeded
// source, making runs reproducible. Random scheduling is fair with
// probability 1.
type Random struct {
	rng *rand.Rand
}

// NewRandom returns a random daemon seeded deterministically.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Daemon.
func (d *Random) Name() string { return "random" }

// Pick implements Daemon.
func (d *Random) Pick(st *program.State, enabled []*program.Action, step int) *program.Action {
	return enabled[d.rng.Intn(len(enabled))]
}

// Metric scores states; adversarial daemons maximize it. Higher means
// "further from the invariant".
type Metric func(st *program.State) float64

// Adversarial greedily picks the enabled action whose successor maximizes
// the metric, breaking ties by program order. With the exact worst-case
// distance metric from verify.WorstDistances it realizes the true worst
// case on convergent programs; with a heuristic metric (e.g. violated
// constraint count) it approximates an adversary at scale.
//
// Adversarial daemons are deliberately unfair: they exercise the paper's
// Section 8 claim that the derived programs converge without fairness.
type Adversarial struct {
	metric Metric
	name   string
}

// NewAdversarial returns a daemon maximizing the given metric.
func NewAdversarial(name string, metric Metric) *Adversarial {
	return &Adversarial{metric: metric, name: name}
}

// Name implements Daemon.
func (d *Adversarial) Name() string { return d.name }

// Pick implements Daemon.
func (d *Adversarial) Pick(st *program.State, enabled []*program.Action, step int) *program.Action {
	best := enabled[0]
	bestScore := -1.0
	for _, a := range enabled {
		next := a.Apply(st)
		if score := d.metric(next); score > bestScore {
			bestScore = score
			best = a
		}
	}
	return best
}

// ViolationMetric builds a heuristic adversarial metric from a predicate
// list: the number of violated predicates at the state. It needs no state
// enumeration and hence scales to large instances.
func ViolationMetric(preds []*program.Predicate) Metric {
	return func(st *program.State) float64 {
		n := 0.0
		for _, p := range preds {
			if !p.Holds(st) {
				n++
			}
		}
		return n
	}
}

// DistanceMetric wraps an exact worst-case distance table (indexed by
// state index) as a Metric.
func DistanceMetric(schema *program.Schema, dist []int32) Metric {
	return func(st *program.State) float64 {
		return float64(dist[schema.Index(st)])
	}
}

// NewWorstCase returns the exact adversarial daemon for a convergent
// program: it greedily maximizes the worst-case distance table produced by
// verify's sharded fixpoint (Space.WorstDistances), realizing the true
// worst-case schedule of the paper's variant-function bound.
func NewWorstCase(schema *program.Schema, dist []int32) *Adversarial {
	return NewAdversarial("worst-case", DistanceMetric(schema, dist))
}

// KindBiased prefers actions of the given kind when any is enabled,
// delegating to the inner daemon among the preferred subset. Biasing
// against convergence actions models a scheduler that starves repair —
// another unfair schedule the designs must survive.
type KindBiased struct {
	inner  Daemon
	prefer program.ActionKind
}

// NewKindBiased wraps inner with a kind preference.
func NewKindBiased(inner Daemon, prefer program.ActionKind) *KindBiased {
	return &KindBiased{inner: inner, prefer: prefer}
}

// Name implements Daemon.
func (d *KindBiased) Name() string {
	return d.inner.Name() + "+prefer-" + d.prefer.String()
}

// Pick implements Daemon.
func (d *KindBiased) Pick(st *program.State, enabled []*program.Action, step int) *program.Action {
	var preferred []*program.Action
	for _, a := range enabled {
		if a.Kind == d.prefer {
			preferred = append(preferred, a)
		}
	}
	if len(preferred) == 0 {
		preferred = enabled
	}
	return d.inner.Pick(st, preferred, step)
}

// interface compliance
var (
	_ Daemon = (*RoundRobin)(nil)
	_ Daemon = (*Random)(nil)
	_ Daemon = (*Adversarial)(nil)
	_ Daemon = (*KindBiased)(nil)
)
