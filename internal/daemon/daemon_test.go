package daemon

import (
	"testing"

	"nonmask/internal/program"
)

// threeActions builds a program with three always-enabled counter actions
// so scheduling choices are fully observable.
func threeActions(t *testing.T) (*program.Program, []program.VarID) {
	t.Helper()
	s := program.NewSchema()
	ids := s.MustDeclareArray("n", 3, program.IntRange(0, 100))
	p := program.New("p", s)
	for i, id := range ids {
		id := id
		name := []string{"a", "b", "c"}[i]
		p.Add(program.NewAction(name, program.Closure,
			[]program.VarID{id}, []program.VarID{id},
			func(st *program.State) bool { return st.Get(id) < 100 },
			func(st *program.State) { st.Set(id, st.Get(id)+1) }))
	}
	return p, ids
}

func TestRoundRobinCyclesInProgramOrder(t *testing.T) {
	p, _ := threeActions(t)
	d := NewRoundRobin(p)
	st := p.Schema.NewState()
	var got []string
	for i := 0; i < 6; i++ {
		a := d.Pick(st, p.Enabled(st), i)
		got = append(got, a.Name)
		st = a.Apply(st)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsDisabled(t *testing.T) {
	p, ids := threeActions(t)
	d := NewRoundRobin(p)
	st := p.Schema.NewState()
	st.Set(ids[0], 100) // disable action a
	a := d.Pick(st, p.Enabled(st), 0)
	if a.Name != "b" {
		t.Errorf("Pick = %s, want b", a.Name)
	}
	a = d.Pick(st, p.Enabled(st), 1)
	if a.Name != "c" {
		t.Errorf("Pick = %s, want c", a.Name)
	}
	a = d.Pick(st, p.Enabled(st), 2)
	if a.Name != "b" {
		t.Errorf("Pick = %s, want b (wrap, a disabled)", a.Name)
	}
}

func TestRoundRobinIsWeaklyFair(t *testing.T) {
	// Every always-enabled action must fire at least once in any window of
	// len(actions) picks.
	p, _ := threeActions(t)
	d := NewRoundRobin(p)
	st := p.Schema.NewState()
	counts := map[string]int{}
	for i := 0; i < 30; i++ {
		a := d.Pick(st, p.Enabled(st), i)
		counts[a.Name]++
		st = a.Apply(st)
	}
	for _, name := range []string{"a", "b", "c"} {
		if counts[name] != 10 {
			t.Errorf("action %s fired %d times in 30 picks, want 10", name, counts[name])
		}
	}
}

func TestRandomIsSeededAndCovers(t *testing.T) {
	p, _ := threeActions(t)
	st := p.Schema.NewState()
	enabled := p.Enabled(st)

	d1 := NewRandom(42)
	d2 := NewRandom(42)
	for i := 0; i < 20; i++ {
		if d1.Pick(st, enabled, i) != d2.Pick(st, enabled, i) {
			t.Fatal("same-seed random daemons diverge")
		}
	}

	d := NewRandom(1)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[d.Pick(st, enabled, i).Name] = true
	}
	if len(seen) != 3 {
		t.Errorf("random daemon covered %d of 3 actions", len(seen))
	}
}

func TestAdversarialMaximizesMetric(t *testing.T) {
	p, ids := threeActions(t)
	// Metric: value of n[2]; the adversary should always grow n[2].
	metric := func(st *program.State) float64 { return float64(st.Get(ids[2])) }
	d := NewAdversarial("max-n2", metric)
	st := p.Schema.NewState()
	for i := 0; i < 5; i++ {
		a := d.Pick(st, p.Enabled(st), i)
		if a.Name != "c" {
			t.Fatalf("adversarial pick = %s, want c", a.Name)
		}
		st = a.Apply(st)
	}
	if d.Name() != "max-n2" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestViolationMetric(t *testing.T) {
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 4))
	y := s.MustDeclare("y", program.IntRange(0, 4))
	preds := []*program.Predicate{
		program.NewPredicate("x=0", []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 }),
		program.NewPredicate("y=0", []program.VarID{y},
			func(st *program.State) bool { return st.Get(y) == 0 }),
	}
	m := ViolationMetric(preds)
	st := s.NewState()
	if m(st) != 0 {
		t.Errorf("metric at all-good = %v, want 0", m(st))
	}
	st.Set(x, 1)
	if m(st) != 1 {
		t.Errorf("metric with one violation = %v, want 1", m(st))
	}
	st.Set(y, 2)
	if m(st) != 2 {
		t.Errorf("metric with two violations = %v, want 2", m(st))
	}
}

func TestDistanceMetric(t *testing.T) {
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 3))
	dist := []int32{3, 2, 1, 0}
	m := DistanceMetric(s, dist)
	st := s.NewState()
	st.Set(x, 1)
	if m(st) != 2 {
		t.Errorf("metric(x=1) = %v, want 2", m(st))
	}
}

func TestKindBiased(t *testing.T) {
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 100))
	p := program.New("p", s)
	cl := program.NewAction("closure-act", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return true },
		func(st *program.State) {})
	cv := program.NewAction("conv-act", program.Convergence,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) > 50 },
		func(st *program.State) { st.Set(x, 0) })
	p.Add(cl, cv)

	d := NewKindBiased(NewRandom(7), program.Closure)
	st := p.Schema.NewState()
	st.Set(x, 60) // both enabled
	for i := 0; i < 10; i++ {
		if a := d.Pick(st, p.Enabled(st), i); a != cl {
			t.Fatalf("biased daemon picked %s, want closure-act", a.Name)
		}
	}
	// When no preferred action is enabled, it falls through.
	st.Set(x, 60)
	only := []*program.Action{cv}
	if a := d.Pick(st, only, 0); a != cv {
		t.Errorf("biased daemon with no preferred enabled picked %s", a.Name)
	}
	if d.Name() != "random+prefer-closure" {
		t.Errorf("Name = %q", d.Name())
	}
}
