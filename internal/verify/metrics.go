package verify

import (
	"context"
	"fmt"
	"strings"

	"nonmask/internal/program"
)

// The tolerance-metrics engine (DESIGN §10). The paper's verdict is
// boolean — the triple is fault-tolerant or it is not — but a nonmasking
// design is most useful quantified: how far can faults push the system
// from the invariant, and how long does recovery take? The passes in this
// file turn the already-enumerated state space and its CSR transition
// graph into three such numbers:
//
//	distance profile:   min-steps-to-S histogram over the fault span T
//	                    (BFS from S over the reverse CSR);
//	stabilization time: exact worst case under the arbitrary daemon (the
//	                    WorstDistances variant table, surfaced) and the
//	                    expected case under the uniform-random daemon (a
//	                    Jacobi value iteration over the hitting-time
//	                    equations);
//	constraint costs:   for each conjunct of the invariant, the worst-case
//	                    number of steps until it holds and stays held.
//
// All three are deterministic: identical for every worker count and for
// the CSR engine vs the on-the-fly fallback. Integer aggregates make that
// trivial; the floating-point ones fix the summation order (per-state
// sums in action order, per-chunk partials folded in chunk order).

// ConstraintSpec names one conjunct of the invariant for the
// per-constraint recovery-cost pass. Registry protocols derive specs from
// their Design's constraint set (registry.ConstraintSpecs); GCL modules
// from the module's `constraint` clauses.
type ConstraintSpec struct {
	// Name labels the constraint in reports (e.g. "C1: x.0 = x.1").
	Name string
	// Pred is the constraint predicate.
	Pred *program.Predicate
}

// ConstraintCost is one constraint's recovery cost: the worst-case number
// of steps, from anywhere in the fault span, until the constraint holds
// and keeps holding ("holds and stays held" — reaching a state where the
// constraint merely holds is no use if the next step can violate it
// again, so the target is the constraint's stable subset).
type ConstraintCost struct {
	// Name is the constraint's label.
	Name string
	// Measured reports whether the cost exists: every daemon, from every
	// T state, is forced into the stable subset. False when some schedule
	// avoids it forever (cycle or deadlock outside the stable set).
	Measured bool
	// WorstSteps is the exact worst-case step count (valid when Measured).
	WorstSteps int
	// StableStates counts the T states where the constraint holds and,
	// under any daemon, keeps holding.
	StableStates int64
}

// ToleranceMetrics is the result of the quantitative analyses over one
// enumerated space. The boolean convergence verdict is deliberately not
// repeated here; each group carries its own validity flag because the
// numbers exist under different conditions (a program can fail
// arbitrary-daemon convergence and still have finite expected
// stabilization time under the uniform-random daemon).
type ToleranceMetrics struct {
	// Profile is the distance-to-invariant histogram over T: Profile[d]
	// counts the T states whose shortest path to S has d steps
	// (Profile[0] = |S|). States that cannot reach S at all are excluded
	// and counted in UnreachableStates.
	Profile []int64
	// MaxDistance is the largest d with Profile[d] > 0.
	MaxDistance int
	// MeanDistance is the mean shortest distance over the reachable T
	// states (S states included at distance 0).
	MeanDistance float64
	// UnreachableStates counts T states with no path to S.
	UnreachableStates int64

	// WorstMeasured reports whether the worst-case stabilization time
	// exists (arbitrary-daemon convergence holds).
	WorstMeasured bool
	// WorstSteps is the exact worst-case stabilization time: the maximum
	// over T∧¬S states of the longest action sequence any daemon can
	// stretch before S holds.
	WorstSteps int
	// MeanWorstSteps is the mean of that per-state worst case.
	MeanWorstSteps float64

	// ExpectedMeasured reports whether the expected stabilization time
	// exists and the value iteration settled: every T state reaches S
	// with probability 1 under the uniform-random daemon.
	ExpectedMeasured bool
	// ExpectedSteps is the maximum over T∧¬S states of the expected
	// number of steps to reach S when the daemon picks uniformly among
	// enabled actions.
	ExpectedSteps float64
	// MeanExpectedSteps is the mean of that per-state expectation.
	MeanExpectedSteps float64
	// ExpectedIterations is the number of Jacobi sweeps the value
	// iteration ran before the residual dropped below expectedTol.
	ExpectedIterations int

	// Constraints is the per-constraint recovery-cost breakdown, in spec
	// order. Empty when the caller supplied no constraint specs.
	Constraints []ConstraintCost
}

// Summary renders the metrics as human-readable prose, one line per
// analysis group, matching the vocabulary of ConvergenceResult.Summary.
func (m *ToleranceMetrics) Summary() string {
	var b strings.Builder
	reach := int64(0)
	for _, c := range m.Profile {
		reach += c
	}
	fmt.Fprintf(&b, "distance profile: max %d, mean %.2f over %d reachable T states",
		m.MaxDistance, m.MeanDistance, reach)
	if m.UnreachableStates > 0 {
		fmt.Fprintf(&b, " (%d unreachable)", m.UnreachableStates)
	}
	b.WriteString("\n  histogram:")
	for d, c := range m.Profile {
		fmt.Fprintf(&b, " %d:%d", d, c)
	}
	b.WriteString("\n")
	if m.WorstMeasured {
		fmt.Fprintf(&b, "worst-case stabilization: %d steps (mean %.2f)\n",
			m.WorstSteps, m.MeanWorstSteps)
	} else {
		b.WriteString("worst-case stabilization: unbounded (no arbitrary-daemon convergence)\n")
	}
	if m.ExpectedMeasured {
		fmt.Fprintf(&b, "expected stabilization (uniform-random daemon): %.2f steps (mean %.2f, %d iterations)\n",
			m.ExpectedSteps, m.MeanExpectedSteps, m.ExpectedIterations)
	} else {
		b.WriteString("expected stabilization (uniform-random daemon): undefined for some T state\n")
	}
	for _, c := range m.Constraints {
		if c.Measured {
			fmt.Fprintf(&b, "constraint %q: worst %d steps to hold-and-stay-held (%d stable states)\n",
				c.Name, c.WorstSteps, c.StableStates)
		} else {
			fmt.Fprintf(&b, "constraint %q: recovery unbounded (%d stable states)\n",
				c.Name, c.StableStates)
		}
	}
	return b.String()
}

// expectedTol is the absolute residual at which the hitting-time value
// iteration is considered settled. On acyclic regions the iteration
// reaches an exact fixpoint (residual 0) after depth sweeps; the
// tolerance only matters on cyclic regions, where the error decays
// geometrically.
const expectedTol = 1e-9

// expectedIterCap bounds the value iteration. Hitting the cap means some
// state's expectation diverges (or converges too slowly to trust);
// ExpectedMeasured is then false.
const expectedIterCap = 100_000

// MetricsContext runs the quantitative tolerance analyses over the space:
// the distance-to-invariant profile, worst-case and expected stabilization
// times, and — for each supplied constraint spec — the recovery cost until
// the constraint holds and stays held. Check runs it when WithMetrics is
// given; callers holding a Report can also invoke it directly on
// Report.Space (passes keep recording into the report's collector).
//
// Every number is identical for every worker count and for the CSR engine
// vs the on-the-fly fallback.
func (sp *Space) MetricsContext(ctx context.Context, constraints []ConstraintSpec) (*ToleranceMetrics, error) {
	m := &ToleranceMetrics{}
	dist, err := sp.distanceProfile(ctx, m)
	if err != nil {
		return nil, err
	}
	if err := sp.worstMetrics(ctx, m); err != nil {
		return nil, err
	}
	if err := sp.expectedSteps(ctx, dist, m); err != nil {
		return nil, err
	}
	for _, spec := range constraints {
		cost, err := sp.constraintCost(ctx, spec)
		if err != nil {
			return nil, err
		}
		m.Constraints = append(m.Constraints, cost)
	}
	return m, nil
}

// DistancesContext returns the shortest-path distance-to-S table the
// metrics distance profile is built from: for every state index, the
// length of the shortest program computation reaching S (0 for S states,
// -1 for states outside T or unable to reach S at all). Simulators use it
// as the exact distance observable, so sampled numbers (cssim,
// sim.Availability) are directly comparable with MetricsContext's
// distance profile.
func (sp *Space) DistancesContext(ctx context.Context) ([]int32, error) {
	var scratch ToleranceMetrics
	return sp.distanceProfile(ctx, &scratch)
}

// distanceProfile computes, for every T state, the length of the shortest
// action path to S (0 for S states, -1 when S is unreachable), and folds
// the per-distance counts into m. With the CSR available it is a
// level-synchronized multi-source BFS from S over the reverse index;
// without it, a round-based relaxation sweep (round r resolves exactly
// the states at distance r, so both engines produce the same table).
func (sp *Space) distanceProfile(ctx context.Context, m *ToleranceMetrics) ([]int32, error) {
	span := startPass(sp.opts, PassDistanceProfile, 0)
	workers := sp.workers()
	dist := make([]int32, sp.Count)
	for i := range dist {
		dist[i] = -1
	}

	// Distance 0: the invariant itself (S ⊆ T by space construction).
	seed := make([][]int64, workers)
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			if sp.inS.get(i) {
				dist[i] = 0
				seed[worker] = append(seed[worker], i)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	frontier := flatten(seed)
	m.Profile = append(m.Profile, sp.weightedLen(frontier))

	if sp.idx != nil {
		// Backward BFS over the reverse CSR. visited claims region states
		// atomically, so a state reached through several edges of the same
		// wave lands in exactly one worker's next-list (and batching a
		// level is safe — expansion never reads dist). On the spill tier
		// levels overflow to sorted temp-file runs.
		revOff, revPred, err := sp.predIndex(ctx)
		if err != nil {
			return nil, err
		}
		visited := newBitset(sp.Count)
		level := int32(0)
		expand := func(batch []int64, emit func(worker int, pp int64)) error {
			return parallelRange(ctx, workers, int64(len(batch)), sp.opts.Progress, func(worker int, lo, hi int64) {
				for w := lo; w < hi; w++ {
					j := batch[w]
					for _, p := range revPred[revOff[j]:revOff[j+1]] {
						pp := int64(p)
						if !sp.region(pp) || !visited.testAndSet(pp) {
							continue
						}
						dist[pp] = level
						emit(worker, pp)
					}
				}
			})
		}
		if sp.spillFrontiers() {
			cur := newFrontierSpool(sp.arena, workers)
			for _, i := range frontier {
				cur.add(0, i)
			}
			for cur.size() > 0 {
				span.observeFrontier(cur.size())
				level++
				next := newFrontierSpool(sp.arena, workers)
				weights := make([]int64, workers)
				if err := cur.drain(func(batch []int64) error {
					return expand(batch, func(worker int, pp int64) {
						next.add(worker, pp)
						weights[worker] += sp.weightOf(pp)
					})
				}); err != nil {
					next.release()
					return nil, err
				}
				if next.size() > 0 {
					var lw int64
					for _, w := range weights {
						lw += w
					}
					m.Profile = append(m.Profile, lw)
				}
				cur = next
			}
			cur.release()
		} else {
			for len(frontier) > 0 {
				span.observeFrontier(int64(len(frontier)))
				level++
				next := make([][]int64, workers)
				if err := expand(frontier, func(worker int, pp int64) {
					next[worker] = append(next[worker], pp)
				}); err != nil {
					return nil, err
				}
				frontier = flatten(next)
				if len(frontier) > 0 {
					m.Profile = append(m.Profile, sp.weightedLen(frontier))
				}
			}
		}
	} else {
		// Round-based fallback: at the start of round r every state at
		// distance < r is resolved and no other, so a region state with any
		// resolved successor has distance exactly r. Newly resolved states
		// are applied after the scan so a round never reads its own writes.
		scr := sp.newStatePairs()
		for level := int32(1); ; level++ {
			found := make([][]int64, workers)
			err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
				st, tmp := scr[worker].st, scr[worker].tmp
				for i := lo; i < hi; i++ {
					if !sp.region(i) || dist[i] >= 0 {
						continue
					}
					sp.stateInto(i, st)
					for _, a := range sp.P.Actions {
						if !a.Guard(st) {
							continue
						}
						a.ApplyInto(st, tmp)
						if dist[sp.indexOf(tmp)] >= 0 {
							found[worker] = append(found[worker], i)
							break
						}
					}
				}
			})
			if err != nil {
				return nil, err
			}
			resolved := flatten(found)
			if len(resolved) == 0 {
				break
			}
			span.observeFrontier(int64(len(resolved)))
			for _, i := range resolved {
				dist[i] = level
			}
			m.Profile = append(m.Profile, sp.weightedLen(resolved))
		}
	}

	m.MaxDistance = len(m.Profile) - 1
	var reach, weighted int64
	for d, n := range m.Profile {
		reach += n
		weighted += int64(d) * n
	}
	m.UnreachableStates = sp.CountT() - reach
	if reach > 0 {
		m.MeanDistance = float64(weighted) / float64(reach)
	}
	span.end(sp.Count)
	return dist, nil
}

// worstMetrics surfaces the exact worst-case stabilization time from the
// WorstDistances variant table (cached on the space, so a Check that
// already ran the convergence fixpoint does not pay it twice for the
// max/mean fold).
func (sp *Space) worstMetrics(ctx context.Context, m *ToleranceMetrics) error {
	steps, ok, err := sp.WorstDistancesContext(ctx)
	if err != nil || !ok {
		return err
	}
	m.WorstMeasured = true
	var worst int32
	var sum, n int64
	for i := int64(0); i < sp.Count; i++ {
		if !sp.region(i) {
			continue
		}
		if steps[i] > worst {
			worst = steps[i]
		}
		sum += sp.weightOf(i) * int64(steps[i])
		n += sp.weightOf(i)
	}
	m.WorstSteps = int(worst)
	if n > 0 {
		m.MeanWorstSteps = float64(sum) / float64(n)
	}
	return nil
}

// expectedSteps solves the expected-hitting-time equations for the
// uniform-random daemon by Jacobi value iteration:
//
//	E[i] = 0                                  for i ∈ S
//	E[i] = 1 + (Σ over successors j E[j]) / deg(i)   for i ∈ T∧¬S
//
// The expectation is finite exactly for the states that cannot reach a
// state from which S is unreachable (with every action carrying positive
// probability, "S reachable from everywhere reachable" forces almost-sure
// absorption). Those certain states form the measured set; if any region
// state falls outside it — or the iteration hits its cap — the metric is
// reported unmeasured.
//
// Determinism: each state's successor sum runs in action order on a
// single worker, sweeps are synchronous (new values never feed the sweep
// that computes them), the residual is an order-independent max, and the
// mean folds per-chunk partial sums in chunk order — so the result is
// bit-identical for every worker count and for CSR vs fallback.
func (sp *Space) expectedSteps(ctx context.Context, dist []int32, m *ToleranceMetrics) error {
	region := countAndNot(sp.inT, sp.inS)
	if region == 0 {
		m.ExpectedMeasured = true
		return nil
	}
	span := startPass(sp.opts, PassExpectedSteps, 0)
	workers := sp.workers()

	// doomed: states whose expectation is infinite — the backward closure
	// (within T) of the states that cannot reach S or step outside T.
	doomed, err := sp.doomedStates(ctx, dist)
	if err != nil {
		return err
	}
	measured := func(i int64) bool { return sp.region(i) && !doomed.get(i) }
	var nMeasured int64
	for i := int64(0); i < sp.Count; i++ {
		if measured(i) {
			nMeasured += sp.weightOf(i)
		}
	}
	if nMeasured == 0 {
		span.end(sp.Count)
		return nil
	}

	cur := make([]float64, sp.Count)
	next := make([]float64, sp.Count)
	nChunks := (sp.Count + chunkStates - 1) / chunkStates
	resid := make([]float64, nChunks)
	var scr []statePair
	if sp.idx == nil {
		scr = sp.newStatePairs()
	}
	iters := 0
	for iters < expectedIterCap {
		iters++
		err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
			var worstDelta float64
			for i := lo; i < hi; i++ {
				if !measured(i) {
					continue
				}
				var sum float64
				var deg int
				if sp.idx != nil {
					row := sp.idx.out(i)
					deg = len(row)
					for _, j := range row {
						if !sp.inS.get(int64(j)) {
							sum += cur[j]
						}
					}
				} else {
					st, tmp := scr[worker].st, scr[worker].tmp
					sp.stateInto(i, st)
					for _, a := range sp.P.Actions {
						if !a.Guard(st) {
							continue
						}
						deg++
						a.ApplyInto(st, tmp)
						if j := sp.indexOf(tmp); !sp.inS.get(j) {
							sum += cur[j]
						}
					}
				}
				v := 1 + sum/float64(deg)
				next[i] = v
				if d := v - cur[i]; d > worstDelta {
					worstDelta = d
				} else if -d > worstDelta {
					worstDelta = -d
				}
			}
			if worstDelta > resid[lo/chunkStates] {
				resid[lo/chunkStates] = worstDelta
			}
		})
		if err != nil {
			return err
		}
		cur, next = next, cur
		var residual float64
		for c, r := range resid {
			if r > residual {
				residual = r
			}
			resid[c] = 0
		}
		if residual <= expectedTol {
			m.ExpectedMeasured = doomed.count() == 0
			break
		}
	}
	m.ExpectedIterations = iters

	// Aggregate: max is order-independent; the mean folds per-chunk sums
	// sequentially so float addition order is fixed. The per-state terms
	// are orbit-weighted (weight 1 multiplies exactly, so full-mode sums
	// are bit-identical to the unweighted fold).
	sums := make([]float64, nChunks)
	maxes := make([]float64, nChunks)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		var s, mx float64
		for i := lo; i < hi; i++ {
			if !measured(i) {
				continue
			}
			s += float64(sp.weightOf(i)) * cur[i]
			if cur[i] > mx {
				mx = cur[i]
			}
		}
		sums[lo/chunkStates] = s
		maxes[lo/chunkStates] = mx
	})
	if err != nil {
		return err
	}
	var total, worst float64
	for c := range sums {
		total += sums[c]
		if maxes[c] > worst {
			worst = maxes[c]
		}
	}
	m.ExpectedSteps = worst
	m.MeanExpectedSteps = total / float64(nMeasured)
	span.end(sp.Count)
	return nil
}

// doomedStates returns the T states from which the uniform-random daemon
// can (with positive probability) get stuck: the backward closure, within
// T, of the states that cannot reach S at all (dist < 0) plus the states
// with an escaping edge. dist is the distanceProfile table.
func (sp *Space) doomedStates(ctx context.Context, dist []int32) (bitset, error) {
	workers := sp.workers()
	doomed := newBitset(sp.Count)

	// Seeds: unreachable region states, and region states with a successor
	// outside T (an escape counts as never recovering within the span).
	seedLists := make([][]int64, workers)
	var scr []statePair
	if sp.idx == nil {
		scr = sp.newStatePairs()
	}
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			if !sp.region(i) {
				continue
			}
			bad := dist[i] < 0
			if !bad {
				if sp.idx != nil {
					row := sp.idx.out(i)
					if len(row) == 0 {
						bad = true
					}
					for _, j := range row {
						if !sp.inT.get(int64(j)) {
							bad = true
							break
						}
					}
				} else {
					st, tmp := scr[worker].st, scr[worker].tmp
					sp.stateInto(i, st)
					enabled := false
					for _, a := range sp.P.Actions {
						if !a.Guard(st) {
							continue
						}
						enabled = true
						a.ApplyInto(st, tmp)
						if !sp.inT.get(sp.indexOf(tmp)) {
							bad = true
							break
						}
					}
					if !enabled {
						bad = true
					}
				}
			}
			if bad && doomed.testAndSet(i) {
				seedLists[worker] = append(seedLists[worker], i)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	frontier := flatten(seedLists)
	if len(frontier) == 0 {
		return doomed, nil
	}

	if sp.idx != nil {
		revOff, revPred, err := sp.predIndex(ctx)
		if err != nil {
			return nil, err
		}
		for len(frontier) > 0 {
			next := make([][]int64, workers)
			err := parallelRange(ctx, workers, int64(len(frontier)), sp.opts.Progress, func(worker int, lo, hi int64) {
				for w := lo; w < hi; w++ {
					j := frontier[w]
					for _, p := range revPred[revOff[j]:revOff[j+1]] {
						pp := int64(p)
						if sp.region(pp) && doomed.testAndSet(pp) {
							next[worker] = append(next[worker], pp)
						}
					}
				}
			})
			if err != nil {
				return nil, err
			}
			frontier = flatten(next)
		}
		return doomed, nil
	}

	// Fallback: round-based forward relaxation to the same fixpoint.
	for {
		found := make([][]int64, workers)
		err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
			st, tmp := scr[worker].st, scr[worker].tmp
			for i := lo; i < hi; i++ {
				if !sp.region(i) || doomed.get(i) {
					continue
				}
				sp.stateInto(i, st)
				for _, a := range sp.P.Actions {
					if !a.Guard(st) {
						continue
					}
					a.ApplyInto(st, tmp)
					if doomed.get(sp.indexOf(tmp)) {
						found[worker] = append(found[worker], i)
						break
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		grown := flatten(found)
		if len(grown) == 0 {
			return doomed, nil
		}
		for _, i := range grown {
			doomed.set(i)
		}
	}
}

// constraintCost measures how long faults can keep one invariant conjunct
// broken: the worst-case number of steps, from anywhere in T, until the
// constraint holds *and stays held*. The target is the constraint's
// stable subset — the largest subset of (constraint ∧ T) no action ever
// leaves — computed by removing, to a fixpoint, every state with an edge
// out of the candidate set; the cost is then the worst-case distance to
// that subset, by the same wave peeling the convergence verdict uses.
func (sp *Space) constraintCost(ctx context.Context, spec ConstraintSpec) (ConstraintCost, error) {
	cost := ConstraintCost{Name: spec.Name}
	span := startPass(sp.opts, PassConstraintCost, 0)
	g, err := sp.evalPred(ctx, spec.Pred)
	if err != nil {
		return cost, err
	}
	// Candidate set: constraint ∧ T, as a fresh bitset (evalPred may have
	// returned a shared full bitset for constant-true predicates).
	good := newBitset(sp.Count)
	for w := range good {
		good[w] = g[w] & sp.inT[w]
	}
	stable, err := sp.stableSubset(ctx, good)
	if err != nil {
		return cost, err
	}
	cost.StableStates = sp.weightedCount(stable)

	// Worst-case distance to the stable subset: re-target the convergence
	// peel at S' = stable over the same transition graph. A stalled peel
	// (cycle or deadlock avoiding the subset) means no finite cost exists.
	name := fmt.Sprintf("stable(%s)", spec.Name)
	pred := program.NewPredicate(name, nil, func(st *program.State) bool {
		return stable.get(sp.indexOf(st))
	})
	ds := sp.derived(pred, sp.T, stable, sp.inT)
	var res *ConvergenceResult
	if sp.idx != nil {
		res, _, err = ds.checkConvergenceKahn(ctx)
	} else {
		res, err = ds.checkConvergenceDFS(ctx)
	}
	if err != nil {
		return cost, err
	}
	if res.Converges {
		cost.Measured = true
		cost.WorstSteps = res.WorstSteps
	}
	span.end(sp.Count)
	return cost, nil
}

// stableSubset shrinks the candidate set to its largest closed subset:
// repeatedly remove every member with an edge leaving the current set
// (including edges out of T). What survives is exactly the set of states
// from which the candidate predicate keeps holding under every daemon.
// The removal runs backward over the reverse CSR when available (each
// removed state releases its predecessors), or as round-based sweeps.
func (sp *Space) stableSubset(ctx context.Context, good bitset) (bitset, error) {
	workers := sp.workers()
	removed := newBitset(sp.Count)
	inGood := func(i int64) bool { return good.get(i) && !removed.get(i) }

	// Seed: members with an edge out of the candidate set.
	seedLists := make([][]int64, workers)
	var scr []statePair
	if sp.idx == nil {
		scr = sp.newStatePairs()
	}
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			if !good.get(i) {
				continue
			}
			exit := false
			if sp.idx != nil {
				for _, j := range sp.idx.out(i) {
					if !good.get(int64(j)) {
						exit = true
						break
					}
				}
			} else {
				st, tmp := scr[worker].st, scr[worker].tmp
				sp.stateInto(i, st)
				for _, a := range sp.P.Actions {
					if !a.Guard(st) {
						continue
					}
					a.ApplyInto(st, tmp)
					if !good.get(sp.indexOf(tmp)) {
						exit = true
						break
					}
				}
			}
			if exit && removed.testAndSet(i) {
				seedLists[worker] = append(seedLists[worker], i)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	frontier := flatten(seedLists)

	if sp.idx != nil {
		revOff, revPred, err := sp.predIndex(ctx)
		if err != nil {
			return nil, err
		}
		for len(frontier) > 0 {
			next := make([][]int64, workers)
			err := parallelRange(ctx, workers, int64(len(frontier)), sp.opts.Progress, func(worker int, lo, hi int64) {
				for w := lo; w < hi; w++ {
					j := frontier[w]
					for _, p := range revPred[revOff[j]:revOff[j+1]] {
						pp := int64(p)
						if good.get(pp) && removed.testAndSet(pp) {
							next[worker] = append(next[worker], pp)
						}
					}
				}
			})
			if err != nil {
				return nil, err
			}
			frontier = flatten(next)
		}
	} else {
		for len(frontier) > 0 {
			found := make([][]int64, workers)
			err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
				st, tmp := scr[worker].st, scr[worker].tmp
				for i := lo; i < hi; i++ {
					if !inGood(i) {
						continue
					}
					sp.stateInto(i, st)
					for _, a := range sp.P.Actions {
						if !a.Guard(st) {
							continue
						}
						a.ApplyInto(st, tmp)
						if j := sp.indexOf(tmp); !inGood(j) {
							found[worker] = append(found[worker], i)
							break
						}
					}
				}
			})
			if err != nil {
				return nil, err
			}
			grown := flatten(found)
			for _, i := range grown {
				removed.set(i)
			}
			frontier = grown
		}
	}

	stable := newBitset(sp.Count)
	for w := range stable {
		stable[w] = good[w] &^ removed[w]
	}
	return stable, nil
}
