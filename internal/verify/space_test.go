package verify

import (
	"context"
	"strings"
	"testing"

	"nonmask/internal/program"
)

// counter builds the program over x:0..max with a single closure action
// "x < target -> x := x+1" and S = (x = target).
func counter(t *testing.T, max, target int32) (*program.Program, *program.Predicate, program.VarID) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, max))
	p := program.New("counter", s)
	p.Add(program.NewAction("inc", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < target },
		func(st *program.State) { st.Set(x, st.Get(x)+1) }))
	S := program.NewPredicate("x=target", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == target })
	return p, S, x
}

func TestNewSpaceBasics(t *testing.T) {
	p, S, _ := counter(t, 5, 5)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if sp.Count != 6 {
		t.Errorf("Count = %d, want 6", sp.Count)
	}
	if sp.CountS() != 1 {
		t.Errorf("CountS = %d, want 1", sp.CountS())
	}
	if sp.CountT() != 6 {
		t.Errorf("CountT = %d, want 6", sp.CountT())
	}
	if !sp.InS(5) || sp.InS(0) {
		t.Error("InS wrong")
	}
	if got := sp.State(3).Get(0); got != 3 {
		t.Errorf("State(3) x = %d", got)
	}
}

func TestNewSpaceRejectsHugeSpace(t *testing.T) {
	s := program.NewSchema()
	s.MustDeclareArray("x", 8, program.IntRange(0, 999))
	p := program.New("huge", s)
	_, err := NewSpaceContext(context.Background(), p, program.True(), program.True(), Options{})
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Errorf("NewSpace on huge space: %v", err)
	}
}

func TestNewSpaceRejectsSNotSubsetT(t *testing.T) {
	p, S, x := counter(t, 5, 5)
	T := program.NewPredicate("x<3", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < 3 })
	_, err := NewSpaceContext(context.Background(), p, S, T, Options{})
	if err == nil || !strings.Contains(err.Error(), "S does not imply T") {
		t.Errorf("NewSpace with S ⊄ T: %v", err)
	}
}

func TestCheckClosedHolds(t *testing.T) {
	p, S, x := counter(t, 5, 5)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// x >= 0 is trivially closed; x <= 5 closed since target = max.
	le := program.NewPredicate("x<=5", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 5 })
	if v := sp.CheckClosed(le, nil); v != nil {
		t.Errorf("closed predicate reported violation: %v", v)
	}
	// S itself is closed: inc is disabled at x=5.
	if v := sp.CheckClosure(); v != nil {
		t.Errorf("CheckClosure: %v", v)
	}
}

func TestCheckClosedViolation(t *testing.T) {
	p, S, x := counter(t, 5, 5)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// x <= 2 is not closed: inc maps x=2 to x=3.
	le2 := program.NewPredicate("x<=2", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 2 })
	v := sp.CheckClosed(le2, nil)
	if v == nil {
		t.Fatal("open predicate reported closed")
	}
	if v.State.Get(x) != 2 || v.Next.Get(x) != 3 || v.Action.Name != "inc" {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.Error(), "inc") {
		t.Errorf("Error() = %q", v.Error())
	}
	// Restricted to within x<=1, the same predicate IS closed.
	within := program.NewPredicate("x<=1", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 1 })
	if v := sp.CheckClosed(le2, within); v != nil {
		t.Errorf("restricted closure reported violation: %v", v)
	}
}

func TestClassify(t *testing.T) {
	p, S, _ := counter(t, 5, 5)

	masking, err := NewSpaceContext(context.Background(), p, S, S, Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if got := masking.Classify(); got != Masking {
		t.Errorf("Classify = %v, want Masking", got)
	}

	nonmasking, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if got := nonmasking.Classify(); got != Nonmasking {
		t.Errorf("Classify = %v, want Nonmasking", got)
	}

	if Masking.String() != "masking" || Nonmasking.String() != "nonmasking" {
		t.Error("Classification.String wrong")
	}
}
