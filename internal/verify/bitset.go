package verify

import (
	"math/bits"
	"sync/atomic"
)

// bitset is a uint64-packed membership vector over state indices. It
// replaces the seed checker's []bool bitmaps: an eighth of the memory, and
// population counts run a word (64 states) at a time.
//
// Concurrency contract: plain get/set are safe only when concurrent
// writers touch disjoint 64-state-aligned chunks (the worker pool's chunk
// grain is a multiple of 64, so sharded passes satisfy this by
// construction). testAndSet is fully atomic and is what the parallel BFS
// frontiers use for deduplication.
type bitset []uint64

// newBitset returns an all-zero bitset capable of holding n bits.
func newBitset(n int64) bitset { return make(bitset, (n+63)>>6) }

// get reports bit i.
func (b bitset) get(i int64) bool { return b[i>>6]>>(uint(i)&63)&1 != 0 }

// set sets bit i. Not atomic; see the concurrency contract above.
func (b bitset) set(i int64) { b[i>>6] |= 1 << (uint(i) & 63) }

// testAndSet atomically sets bit i and reports whether this call changed
// it from 0 to 1 (i.e. the caller won the race to claim index i).
func (b bitset) testAndSet(i int64) bool {
	word := &b[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(word)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(word, old, old|mask) {
			return true
		}
	}
}

// count returns the number of set bits.
func (b bitset) count() int64 {
	var n int
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return int64(n)
}

// countAnd returns |a ∧ b|.
func countAnd(a, b bitset) int64 {
	var n int
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return int64(n)
}

// countAndNot returns |a ∧ ¬b| — for spaces, |T ∧ ¬S|, the convergence
// region size.
func countAndNot(a, b bitset) int64 {
	var n int
	for i, w := range a {
		n += bits.OnesCount64(w &^ b[i])
	}
	return int64(n)
}

// firstAndNot returns the lowest index set in a but not in b, or -1.
func firstAndNot(a, b bitset) int64 {
	for i, w := range a {
		if d := w &^ b[i]; d != 0 {
			return int64(i)<<6 + int64(bits.TrailingZeros64(d))
		}
	}
	return -1
}

// orInto sets every bit of src in dst (dst |= src).
func (b bitset) orInto(src bitset) {
	for i, w := range src {
		b[i] |= w
	}
}
