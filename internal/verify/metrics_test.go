// Oracle and metamorphic tests for the quantitative tolerance metrics.
// The oracles are models small enough to solve by hand, so the expected
// hitting times pin the value iteration against closed-form answers; the
// metamorphic suite requires every number to be bit-identical across
// worker counts and across the CSR engine vs the on-the-fly fallback.
package verify_test

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"

	"nonmask/internal/program"
	"nonmask/internal/verify"
)

// cycleOracle builds the 3-state chain with a back edge:
//
//	x ∈ {0,1,2}, S: x = 2,  actions 0→1, 1→0, 1→2.
//
// Arbitrary-daemon convergence fails (the daemon can loop 0↔1 forever),
// but under the uniform-random daemon the expected hitting times solve
// exactly: E[2] = 0, E[1] = 1 + (E[0]+E[2])/2 and E[0] = 1 + E[1] give
// E[1] = 3, E[0] = 4.
func cycleOracle(t *testing.T) (*program.Program, *program.Predicate) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 2))
	p := program.New("cycle", s)
	step := func(name string, from, to int32) *program.Action {
		return program.NewAction(name, program.Convergence,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == from },
			func(st *program.State) { st.Set(x, to) })
	}
	p.Add(step("a01", 0, 1), step("a10", 1, 0), step("a12", 1, 2))
	S := program.NewPredicate("x=2", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 2 })
	return p, S
}

func TestMetricsCycleOracle(t *testing.T) {
	p, S := cycleOracle(t)
	rep, err := verify.Check(context.Background(), p, S, nil, verify.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m == nil {
		t.Fatal("WithMetrics produced no metrics block")
	}
	if rep.Unfair.Converges {
		t.Error("cycle oracle converges under the arbitrary daemon; the 0↔1 loop should refute it")
	}
	if want := []int64{1, 1, 1}; !reflect.DeepEqual(m.Profile, want) {
		t.Errorf("Profile = %v, want %v", m.Profile, want)
	}
	if m.MaxDistance != 2 || m.MeanDistance != 1 {
		t.Errorf("distance: max %d mean %v, want max 2 mean 1", m.MaxDistance, m.MeanDistance)
	}
	if m.WorstMeasured {
		t.Error("WorstMeasured = true on a non-convergent program")
	}
	if !m.ExpectedMeasured {
		t.Fatal("ExpectedMeasured = false; the uniform-random walk hits S with probability 1")
	}
	// Closed form: E[0]=4, E[1]=3 → max 4; the mean ranges over the
	// states outside S, so (4+3)/2 = 3.5.
	if math.Abs(m.ExpectedSteps-4) > 1e-6 {
		t.Errorf("ExpectedSteps = %v, want 4", m.ExpectedSteps)
	}
	if math.Abs(m.MeanExpectedSteps-3.5) > 1e-6 {
		t.Errorf("MeanExpectedSteps = %v, want 3.5", m.MeanExpectedSteps)
	}
}

// chainOracle builds the deterministic chain x ∈ 0..3, S: x = 3,
// x<3 → x++. Every daemon walks the same path, so the shortest distance,
// the worst case, and the expectation all coincide: 3 steps from x=0.
func chainOracle(t *testing.T) (*program.Program, *program.Predicate, verify.ConstraintSpec) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 3))
	p := program.New("chain", s)
	p.Add(program.NewAction("inc", program.Convergence,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < 3 },
		func(st *program.State) { st.Set(x, st.Get(x)+1) }))
	S := program.NewPredicate("x=3", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 3 })
	spec := verify.ConstraintSpec{
		Name: "x>=2",
		Pred: program.NewPredicate("x>=2", []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) >= 2 }),
	}
	return p, S, spec
}

func TestMetricsChainOracle(t *testing.T) {
	p, S, spec := chainOracle(t)
	rep, err := verify.Check(context.Background(), p, S, nil,
		verify.WithMetrics(), verify.WithConstraints(spec))
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m == nil {
		t.Fatal("WithMetrics produced no metrics block")
	}
	if want := []int64{1, 1, 1, 1}; !reflect.DeepEqual(m.Profile, want) {
		t.Errorf("Profile = %v, want %v", m.Profile, want)
	}
	if !m.WorstMeasured || m.WorstSteps != 3 {
		t.Errorf("worst = (%v, %d), want (true, 3)", m.WorstMeasured, m.WorstSteps)
	}
	if !m.ExpectedMeasured || math.Abs(m.ExpectedSteps-3) > 1e-6 {
		t.Errorf("expected = (%v, %v), want (true, 3)", m.ExpectedMeasured, m.ExpectedSteps)
	}
	// MeanDistance ranges over all reachable T states ((0+1+2+3)/4);
	// MeanExpectedSteps over the states outside S ((1+2+3)/3).
	if m.MeanDistance != 1.5 {
		t.Errorf("MeanDistance = %v, want 1.5", m.MeanDistance)
	}
	if math.Abs(m.MeanExpectedSteps-2) > 1e-6 {
		t.Errorf("MeanExpectedSteps = %v, want 2", m.MeanExpectedSteps)
	}
	if len(m.Constraints) != 1 {
		t.Fatalf("Constraints = %v, want one entry", m.Constraints)
	}
	// "x>=2 holds and stays held" is the closed subset {2,3}: two steps
	// from x=0 reach it, and x++ never leaves it.
	c := m.Constraints[0]
	if !c.Measured || c.WorstSteps != 2 || c.StableStates != 2 {
		t.Errorf("constraint cost = %+v, want measured, worst 2, stable 2", c)
	}
}

// TestMetricsMetamorphic re-runs every checked-in GCL model with metrics
// on across worker counts {1, 4, NumCPU} and across the CSR engine vs
// the forced on-the-fly fallback, requiring the full metrics block —
// profile, worst and expected times, per-constraint costs — to be
// bit-identical. This is the documented determinism contract of
// MetricsContext.
func TestMetricsMetamorphic(t *testing.T) {
	ctx := context.Background()
	for name, m := range gclModels(t) {
		t.Run(name, func(t *testing.T) {
			specs := make([]verify.ConstraintSpec, 0, len(m.Set.Constraints))
			for _, c := range m.Set.Constraints {
				specs = append(specs, verify.ConstraintSpec{Name: c.Pred.Name, Pred: c.Pred})
			}
			check := func(w int) *verify.ToleranceMetrics {
				t.Helper()
				rep, err := verify.Check(ctx, m.Program, m.S, m.T,
					verify.WithWorkers(w), verify.WithMetrics(), verify.WithConstraints(specs...))
				if err != nil {
					t.Fatalf("Workers=%d: %v", w, err)
				}
				if rep.Metrics == nil {
					t.Fatalf("Workers=%d: no metrics block", w)
				}
				return rep.Metrics
			}
			base := check(1)
			for _, w := range []int{4, runtime.NumCPU()} {
				if got := check(w); !reflect.DeepEqual(base, got) {
					t.Errorf("Workers=%d metrics diverge:\nbase %+v\ngot  %+v", w, base, got)
				}
			}
			restore := verify.SetSuccIndexBudget(1)
			defer restore()
			for _, w := range []int{1, 4} {
				if got := check(w); !reflect.DeepEqual(base, got) {
					t.Errorf("fallback Workers=%d metrics diverge:\nbase %+v\ngot  %+v", w, base, got)
				}
			}
		})
	}
}

// TestDistancesMatchesProfile pins DistancesContext (the simulator's
// observable) to the distance profile MetricsContext reports: folding the
// exported table must reproduce the profile histogram exactly.
func TestDistancesMatchesProfile(t *testing.T) {
	p, S := cycleOracle(t)
	rep, err := verify.Check(context.Background(), p, S, nil, verify.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	dist, err := rep.Space.DistancesContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hist := make([]int64, rep.Metrics.MaxDistance+1)
	for _, d := range dist {
		if d >= 0 {
			hist[d]++
		}
	}
	if !reflect.DeepEqual(hist, rep.Metrics.Profile) {
		t.Errorf("folded table %v != profile %v", hist, rep.Metrics.Profile)
	}
}
