package verify

import (
	"context"

	"nonmask/internal/program"
)

// LeadsToResult reports a leads-to (progress) verdict.
type LeadsToResult struct {
	// Holds is true when every computation of the program that stays in
	// the region and visits a p-state subsequently reaches a q-state.
	Holds bool
	// Stuck, when non-nil, is a reachable p-state (or successor) from
	// which a computation can avoid q forever: either a terminal state or
	// a member of the witness cycle.
	Stuck *program.State
	// Cycle holds the witness states when the failure is a livelock.
	Cycle []*program.State
}

// forEachSucc invokes fn(j) for every enabled successor index j of state
// i, reading the CSR edge list when the index is present and recomputing
// through the scratch pair otherwise.
func (sp *Space) forEachSucc(i int64, scr statePair, fn func(j int64)) {
	if sp.idx != nil {
		for _, j := range sp.idx.out(i) {
			fn(int64(j))
		}
		return
	}
	sp.stateInto(i, scr.st)
	for _, a := range sp.P.Actions {
		if !a.Guard(scr.st) {
			continue
		}
		a.ApplyInto(scr.st, scr.tmp)
		fn(sp.indexOf(scr.tmp))
	}
}

// LeadsTo decides the progress property "p leads to q within the region T"
// (the space's fault-span acts as the region): every computation that
// starts at a region state satisfying p reaches a state satisfying q.
// With fair true the weakly fair daemon is assumed (the paper's
// computation model); otherwise the arbitrary daemon.
//
// This generalizes convergence — convergence is "true leads to S" — and
// verifies the paper's progress specifications exactly, e.g. the token
// ring's "each privileged node eventually yields its privilege to its
// successor" (Section 7.1 spec (ii)): within S, Privileged(j) leads to
// Privileged(j+1).
//
// Implementation: restrict attention to region states reachable from p
// without passing through q; the property holds iff that restricted
// subgraph has no terminal states and no (fair, if fair) cycles.
func (sp *Space) LeadsTo(p, q *program.Predicate, fair bool) *LeadsToResult {
	res, _ := sp.LeadsToContext(context.Background(), p, q, fair)
	return res
}

// LeadsToContext is LeadsTo with cancellation: predicate evaluation, the
// reachability BFS (level-synchronized, atomic frontier deduplication) and
// the stage convergence check are all sharded across the space's workers.
func (sp *Space) LeadsToContext(ctx context.Context, p, q *program.Predicate, fair bool) (*LeadsToResult, error) {
	span := startPass(sp.opts, PassLeadsTo, sp.Count)
	pBits, err := sp.evalPred(ctx, p)
	if err != nil {
		return nil, err
	}
	qBits, err := sp.evalPred(ctx, q)
	if err != nil {
		return nil, err
	}

	// Collect region states satisfying p but not q (p∧q states are
	// immediately done), then run forward reachability stopping at
	// q-states and region exits.
	workers := sp.workers()
	scr := sp.newStatePairs()
	reach := newBitset(sp.Count)
	lists := make([][]int64, workers)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			if sp.inT.get(i) && pBits.get(i) && !qBits.get(i) {
				reach.set(i)
				lists[worker] = append(lists[worker], i)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	frontier := flatten(lists)
	reached := append([]int64(nil), frontier...)
	for len(frontier) > 0 {
		span.observeFrontier(int64(len(frontier)))
		next := make([][]int64, workers)
		err := parallelRange(ctx, workers, int64(len(frontier)), sp.opts.Progress, func(worker int, lo, hi int64) {
			for w := lo; w < hi; w++ {
				sp.forEachSucc(frontier[w], scr[worker], func(j int64) {
					if !sp.inT.get(j) {
						return // leaving the region ends the obligation
					}
					if qBits.get(j) {
						return
					}
					if reach.testAndSet(j) {
						next[worker] = append(next[worker], j)
					}
				})
			}
		})
		if err != nil {
			return nil, err
		}
		frontier = flatten(next)
		reached = append(reached, frontier...)
	}
	if len(reached) == 0 {
		span.end(int64(0))
		return &LeadsToResult{Holds: true}, nil
	}
	// Reuse the deadlock/cycle analysis of the convergence checkers via a
	// stage space sharing this space's successor table: stage T is the
	// reachable set plus its one-step exits, stage S the exits. A
	// transition out of `reach` necessarily hits q or leaves the region;
	// both discharge the obligation, so both count as accepting.
	stageS := newBitset(sp.Count)
	err = parallelRange(ctx, workers, int64(len(reached)), sp.opts.Progress, func(worker int, lo, hi int64) {
		for w := lo; w < hi; w++ {
			sp.forEachSucc(reached[w], scr[worker], func(j int64) {
				if !reach.get(j) {
					stageS.testAndSet(j)
				}
			})
		}
	})
	if err != nil {
		return nil, err
	}
	stageT := newBitset(sp.Count)
	stageT.orInto(reach)
	stageT.orInto(stageS)
	// The reachability stage is done; the livelock analysis below runs on
	// a derived stage space and emits its own convergence span.
	span.end(int64(len(reached)))
	stage := sp.derived(q, sp.T, stageS, stageT)
	var conv *ConvergenceResult
	if fair {
		conv, err = stage.CheckFairConvergenceContext(ctx)
	} else {
		conv, err = stage.CheckConvergenceContext(ctx)
	}
	if err != nil {
		return nil, err
	}
	if conv.Converges {
		return &LeadsToResult{Holds: true}, nil
	}
	res := &LeadsToResult{Cycle: conv.Cycle}
	if conv.Deadlock != nil {
		res.Stuck = conv.Deadlock
	} else if len(conv.Cycle) > 0 {
		res.Stuck = conv.Cycle[0]
	}
	return res, nil
}
