package verify

import (
	"nonmask/internal/program"
)

// LeadsToResult reports a leads-to (progress) verdict.
type LeadsToResult struct {
	// Holds is true when every computation of the program that stays in
	// the region and visits a p-state subsequently reaches a q-state.
	Holds bool
	// Stuck, when non-nil, is a reachable p-state (or successor) from
	// which a computation can avoid q forever: either a terminal state or
	// a member of the witness cycle.
	Stuck *program.State
	// Cycle holds the witness states when the failure is a livelock.
	Cycle []*program.State
}

// LeadsTo decides the progress property "p leads to q within the region T"
// (the space's fault-span acts as the region): every computation that
// starts at a region state satisfying p reaches a state satisfying q.
// With fair true the weakly fair daemon is assumed (the paper's
// computation model); otherwise the arbitrary daemon.
//
// This generalizes convergence — convergence is "true leads to S" — and
// verifies the paper's progress specifications exactly, e.g. the token
// ring's "each privileged node eventually yields its privilege to its
// successor" (Section 7.1 spec (ii)): within S, Privileged(j) leads to
// Privileged(j+1).
//
// Implementation: restrict attention to region states reachable from p
// without passing through q; the property holds iff that restricted
// subgraph has no terminal states and no (fair, if fair) cycles.
func (sp *Space) LeadsTo(p, q *program.Predicate, fair bool) *LeadsToResult {
	// Collect region states satisfying p but not q (p∧q states are
	// immediately done).
	var frontier []int64
	reach := make(map[int64]bool)
	for i := int64(0); i < sp.Count; i++ {
		if !sp.inT[i] {
			continue
		}
		st := sp.State(i)
		if p.Holds(st) && !q.Holds(st) {
			frontier = append(frontier, i)
			reach[i] = true
		}
	}
	// Forward reachability, stopping at q-states.
	for len(frontier) > 0 {
		i := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		st := sp.State(i)
		for _, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			j := sp.P.Schema.Index(a.Apply(st))
			if !sp.inT[j] {
				continue // leaving the region ends the obligation
			}
			next := sp.State(j)
			if q.Holds(next) {
				continue
			}
			if !reach[j] {
				reach[j] = true
				frontier = append(frontier, j)
			}
		}
	}
	if len(reach) == 0 {
		return &LeadsToResult{Holds: true}
	}

	// Build the restricted transition graph over `reach`, then reuse the
	// deadlock/cycle analysis of the convergence checkers via a stage
	// space: inT := reach, inS := complement (q or outside).
	stage := &Space{
		P: sp.P, S: q, T: sp.T, Count: sp.Count,
		inS: make([]bool, sp.Count),
		inT: make([]bool, sp.Count),
	}
	for i := int64(0); i < sp.Count; i++ {
		stage.inT[i] = reach[i]
		stage.inS[i] = false
	}
	// Mark q-states (and region exits) as accepting: stage convergence
	// treats inS as the goal. A transition out of `reach` necessarily hits
	// q or leaves T; encode both as accepting by extending inT to include
	// those successors and flagging them inS.
	for i := range reach {
		st := sp.State(i)
		for _, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			j := sp.P.Schema.Index(a.Apply(st))
			if !reach[j] {
				stage.inT[j] = true
				stage.inS[j] = true
			}
		}
	}
	var conv *ConvergenceResult
	if fair {
		conv = stage.CheckFairConvergence()
	} else {
		conv = stage.CheckConvergence()
	}
	if conv.Converges {
		return &LeadsToResult{Holds: true}
	}
	res := &LeadsToResult{Cycle: conv.Cycle}
	if conv.Deadlock != nil {
		res.Stuck = conv.Deadlock
	} else if len(conv.Cycle) > 0 {
		res.Stuck = conv.Cycle[0]
	}
	return res
}
