// Benchmarks for the tentpole rebuild: packed bitsets, precomputed
// successor tables, and sharded fixpoint passes. The headline numbers are
// the Workers=1 vs Workers=4 convergence benchmark on a >=1<<20-state
// instance and the end-to-end Check on an instance above the old 1<<22
// enumeration ceiling.
//
// Run with:
//
//	go test ./internal/verify -bench . -benchtime 3x -run '^$'
package verify_test

import (
	"context"
	"testing"

	"nonmask/internal/obs"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/verify"
)

// benchConvergence checks the diffusing design on a 10-node binary tree:
// 4 states per node (2 colors x 2 session numbers), 4^10 = 1,048,576
// states — at least 1<<20, the scale the speedup claim is made at.
func benchConvergence(b *testing.B, workers int) {
	inst, err := diffusing.New(diffusing.Binary(10))
	if err != nil {
		b.Fatal(err)
	}
	d := inst.Design
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Check(ctx, d.TolerantProgram(), d.S, d.T,
			verify.WithWorkers(workers))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Space.Count < 1<<20 {
			b.Fatalf("benchmark instance too small: %d states", rep.Space.Count)
		}
		if !rep.Unfair.Converges {
			b.Fatal("benchmark instance must converge")
		}
	}
}

// BenchmarkConvergenceWorkers1 is the sequential baseline on 1<<20 states.
func BenchmarkConvergenceWorkers1(b *testing.B) { benchConvergence(b, 1) }

// BenchmarkConvergenceWorkers4 is the sharded run the speedup claim
// compares against BenchmarkConvergenceWorkers1 (compare with
// benchstat or the ns/op ratio; the ratio requires >= 4 CPUs to show).
func BenchmarkConvergenceWorkers4(b *testing.B) { benchConvergence(b, 4) }

// BenchmarkCheckAboveOldCeiling runs the full pipeline — enumeration,
// successor table, closure, convergence — on Dijkstra's 8-node K=7 ring:
// 7^8 = 5,764,801 states, beyond the seed checker's 1<<22 cap.
func BenchmarkCheckAboveOldCeiling(b *testing.B) {
	inst, err := tokenring.NewRing(7, 7)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Check(ctx, inst.P, inst.S, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Unfair.Converges {
			b.Fatal("K-state ring with K >= nodes-1 must converge")
		}
	}
}

// benchCheckTraced is the overhead guard for the observability layer: the
// same 1<<20-state end-to-end Check with and without an (explicitly no-op)
// tracer and progress counter. The contract is that the traced run stays
// within 5% of the untraced one — the hot loops pay one nil-check per
// ~16k-state chunk and each pass a couple of time.Now calls. Compare:
//
//	go test ./internal/verify -bench 'CheckTracerOverhead' -benchtime 5x -run '^$'
func benchCheckTraced(b *testing.B, options ...verify.Option) {
	inst, err := diffusing.New(diffusing.Binary(10))
	if err != nil {
		b.Fatal(err)
	}
	d := inst.Design
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Check(ctx, d.TolerantProgram(), d.S, d.T, options...)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Space.Count < 1<<20 {
			b.Fatalf("benchmark instance too small: %d states", rep.Space.Count)
		}
	}
}

// BenchmarkCheckTracerOverheadOff is the untraced baseline.
func BenchmarkCheckTracerOverheadOff(b *testing.B) { benchCheckTraced(b) }

// BenchmarkCheckTracerOverheadNop runs with a no-op tracer and a live
// progress counter attached — the worst case a caller can configure
// without actually consuming events.
func BenchmarkCheckTracerOverheadNop(b *testing.B) {
	benchCheckTraced(b, verify.WithTracer(obs.Nop{}), verify.WithProgress(&obs.Progress{}))
}

// BenchmarkCheckEventsIdle runs the same 1<<20-state check with its pass
// spans published to an event-bus stream nobody subscribes to — the
// configuration every csserved job runs in when no SSE client watches.
// The contract extends the tracer one: within 5% of
// BenchmarkCheckTracerOverheadOff, since an idle publish is one mutex
// round-trip, one time.Now, and a ring-slot copy per pass boundary (the
// hot loops themselves only bump the progress counter once per chunk).
//
//	go test ./internal/verify -bench 'CheckTracerOverheadOff|CheckEventsIdle' -benchtime 5x -run '^$'
func BenchmarkCheckEventsIdle(b *testing.B) {
	bus := obs.NewBus(1024)
	benchCheckTraced(b,
		verify.WithTracer(bus.Stream("bench")),
		verify.WithProgress(&obs.Progress{}))
}

// BenchmarkCheckMetricsOff is the analyses-API overhead guard: a
// verdict-only Check after the metrics engine landed. The contract is
// that it stays within 5% of BenchmarkCheckTracerOverheadOff as recorded
// before the metrics passes existed — when off, the plumbing costs one
// Options field test after the verdict passes and nothing in the hot
// loops. Compare against BenchmarkCheckMetricsOn for what opting in
// pays:
//
//	go test ./internal/verify -bench 'CheckMetrics' -benchtime 5x -run '^$'
func BenchmarkCheckMetricsOff(b *testing.B) { benchCheckTraced(b) }

// BenchmarkCheckMetricsOn runs the same 1<<20-state check with the full
// metrics suite (distance profile, worst + expected stabilization).
func BenchmarkCheckMetricsOn(b *testing.B) {
	benchCheckTraced(b, verify.WithMetrics())
}

// benchCheckDiffusing1M runs the full Check on the 1M-state diffusing
// instance, the workload the CSR-vs-fallback comparison is made on.
func benchCheckDiffusing1M(b *testing.B, options ...verify.Option) {
	inst, err := diffusing.New(diffusing.Binary(10))
	if err != nil {
		b.Fatal(err)
	}
	d := inst.Design
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Check(ctx, d.TolerantProgram(), d.S, d.T, options...)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Unfair.Converges {
			b.Fatal("benchmark instance must converge")
		}
	}
}

// BenchmarkCheckDiffusingCSR is the default engine: forward CSR built
// up front, reverse CSR built lazily for the convergence wave. Compare
// against BenchmarkCheckDiffusingFallback for the index's net win, and
// against the dense-table baseline recorded in DESIGN.md §6 for the
// regression guard (the CSR run must not be slower).
func BenchmarkCheckDiffusingCSR(b *testing.B) { benchCheckDiffusing1M(b) }

// BenchmarkCheckDiffusingFallback forces the on-the-fly successor path
// (budget too small for any index) — the engine every instance beyond
// the memory budget runs on.
func BenchmarkCheckDiffusingFallback(b *testing.B) {
	defer verify.SetSuccIndexBudget(1)()
	benchCheckDiffusing1M(b)
}

// TestCheckBeyondDenseBudget pins the headline capacity win of the CSR
// rebuild: the token-ring path instance N=7, K=9 has 9^8 = 43,046,721
// states and 15 actions, so the old dense successor table would need
// 4·15·9^8 ≈ 2.4 GiB — beyond the 2 GiB budget, forcing the slow
// fallback. The CSR index stores only enabled edges and fits with room
// to spare, so the instance now verifies end-to-end on the fast path.
func TestCheckBeyondDenseBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("43M-state end-to-end check (~2 min); skipped in -short mode")
	}
	inst, err := tokenring.NewPath(7, 9)
	if err != nil {
		t.Fatal(err)
	}
	d := inst.Design
	rep, err := verify.Check(context.Background(), d.TolerantProgram(), d.S, d.T)
	if err != nil {
		t.Fatal(err)
	}
	denseBytes := int64(4) * int64(len(d.TolerantProgram().Actions)) * rep.Space.Count
	if denseBytes <= 1<<31 {
		t.Fatalf("instance no longer exceeds the dense budget: %d bytes", denseBytes)
	}
	if !rep.Space.HasSuccIndex() {
		t.Fatal("CSR index was not built — instance ran on the fallback")
	}
	edges, bytes := rep.Space.SuccIndexStats()
	if bytes >= denseBytes/2 {
		t.Errorf("CSR index %d bytes, want at least 2x below the dense %d", bytes, denseBytes)
	}
	if !rep.Unfair.Converges {
		t.Fatalf("path ring must converge: %s", rep.Unfair.Summary())
	}
	t.Logf("%d states, %d edges end-to-end in %v: CSR %d bytes vs dense %d, worst %d steps",
		rep.Space.Count, edges, rep.Elapsed, bytes, denseBytes, rep.Unfair.WorstSteps)
}

// TestCheckAboveOldCeiling pins the acceptance criterion as a regular
// test: an instance above the seed's 1<<22-state enumeration ceiling is
// verified end-to-end through Check, with the exact worst-case bound.
func TestCheckAboveOldCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("5.7M-state end-to-end check (~7s); skipped in -short mode")
	}
	inst, err := tokenring.NewRing(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(context.Background(), inst.P, inst.S, nil)
	if err != nil {
		t.Fatal(err)
	}
	const oldCeiling = int64(1) << 22
	if rep.Space.Count <= oldCeiling {
		t.Fatalf("instance has %d states, not above the old ceiling %d",
			rep.Space.Count, oldCeiling)
	}
	if !rep.Tolerant() {
		t.Fatalf("ring should be tolerant: %s", rep.Summary())
	}
	if !rep.Unfair.Converges {
		t.Fatalf("ring should converge unfairly: %s", rep.Unfair.Summary())
	}
	t.Logf("%d states end-to-end in %v: worst %d steps, mean %.2f",
		rep.Space.Count, rep.Elapsed, rep.Unfair.WorstSteps, rep.Unfair.MeanSteps)
}
