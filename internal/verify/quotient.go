package verify

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"nonmask/internal/program"
)

// stateFingerprint computes the 64-bit fingerprint the MapFingerprint
// lookup table keys representatives by. A package var so the forced-
// collision unit test can substitute a degenerate hash and exercise the
// refusal path (see export_test.go).
var stateFingerprint = (*program.State).Hash64

// FingerprintCollision is the refusal report of the fingerprint-mapped
// quotient tier: two distinct orbit representatives hashed to the same
// 64-bit fingerprint, so the hash cannot stand in for state identity.
// The check refuses with this error — never a silent wrong verdict; the
// caller retries with MapExact (binary search, no hashing).
type FingerprintCollision struct {
	// Fingerprint is the colliding 64-bit value.
	Fingerprint uint64
	// A and B are the two representatives that share it.
	A, B *program.State
}

// Error renders the refusal.
func (c *FingerprintCollision) Error() string {
	return fmt.Sprintf("verify: fingerprint collision %#016x between representatives %s and %s; re-run with the exact quotient map",
		c.Fingerprint, c.A, c.B)
}

// quotient is the symmetry-reduced view of a full state space: the
// ascending list of orbit representatives (full-product indices i with
// canon(i) = i), each orbit's weight, and the canonical-state → quotient-id
// lookup every pass routes successor encoding through. Quotient ids are
// positions in reps, so the quotient space is dense and all bitset/CSR
// machinery applies unchanged.
type quotient struct {
	sym       *Symmetry
	fullCount int64
	reps      []int64  // ascending full indices of the representatives
	weights   []uint32 // orbit sizes, indexed by quotient id

	// Fingerprint lookup (MapFingerprint): open-addressed, linear probing,
	// power-of-two sized at ~2× load headroom. vals stores qid+1 so 0
	// means empty. nil when the exact map is selected.
	fpKeys []uint64
	fpVals []int32
	fpMask uint64
}

// lookupRep binary-searches the representative list for full index fi,
// returning the quotient id.
func (q *quotient) lookupRep(fi int64) (int64, bool) {
	lo, hi := 0, len(q.reps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.reps[mid] < fi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(q.reps) && q.reps[lo] == fi {
		return int64(lo), true
	}
	return 0, false
}

// indexOf canonicalizes st in place and returns its quotient id. Every
// caller passes scratch or freshly produced states, so the in-place
// rewrite is safe (representative states are fixed points). Lookup
// failure is impossible after buildQuotient's idempotence sweep; a miss
// here means memory corruption, so it panics rather than limping on.
func (q *quotient) indexOf(schema *program.Schema, st *program.State) int64 {
	q.sym.Canonicalize(st)
	if q.fpKeys != nil {
		fp := stateFingerprint(st)
		slot := fp & q.fpMask
		for {
			v := q.fpVals[slot]
			if v == 0 {
				panic(fmt.Sprintf("verify: fingerprint %#016x of canonical state %s missing from quotient map", fp, st))
			}
			if q.fpKeys[slot] == fp {
				return int64(v - 1)
			}
			slot = (slot + 1) & q.fpMask
		}
	}
	qid, ok := q.lookupRep(schema.Index(st))
	if !ok {
		panic(fmt.Sprintf("verify: canonical state %s missing from quotient representative list", st))
	}
	return qid
}

// buildQuotient discovers the orbit representatives of p's state space
// under sym and computes orbit weights, in two sharded full-product
// sweeps under one `canonicalize` span:
//
//	sweep 1: count representatives per chunk, then place them at
//	         deterministic offsets of the ascending reps list (a state i
//	         is a representative iff Index(canon(StateAt(i))) = i);
//	sweep 2: canonicalize every state, resolve its representative, and
//	         accumulate orbit weights with per-qid atomic adds. A
//	         canonical image that is not itself a representative fails
//	         here — the idempotence half of the Symmetry contract is
//	         enforced, not assumed.
//
// With MapFingerprint the lookup table is then built from the
// representatives; a 64-bit collision between two of them is refused
// with a FingerprintCollision naming both states.
func buildQuotient(ctx context.Context, p *program.Program, opts Options, fullCount int64) (*quotient, error) {
	sym := opts.Symmetry
	if sym == nil || sym.Canonicalize == nil {
		return nil, fmt.Errorf("verify: SpaceQuotient requires a Symmetry (the instance advertises none)")
	}
	q := &quotient{sym: sym, fullCount: fullCount}
	span := startPass(opts, PassCanonicalize, 2*fullCount)
	workers := opts.workers()
	nChunks := (fullCount + chunkStates - 1) / chunkStates
	chunkBase := make([]int64, nChunks)

	newScratch := func() []*program.State {
		scr := make([]*program.State, workers)
		for i := range scr {
			scr[i] = p.Schema.NewState()
		}
		return scr
	}

	// Sweep 1a: per-chunk representative counts.
	scr := newScratch()
	err := parallelRange(ctx, workers, fullCount, opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		var n int64
		for i := lo; i < hi; i++ {
			p.Schema.StateInto(i, st)
			sym.Canonicalize(st)
			if p.Schema.Index(st) == i {
				n++
			}
		}
		chunkBase[lo/chunkStates] = n
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for c := range chunkBase {
		chunkBase[c], total = total, total+chunkBase[c]
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("verify: quotient space of %q still has %d representatives (int32 index limit)", p.Name, total)
	}

	// Sweep 1b: fill the ascending representative list at each chunk's
	// deterministic offset.
	q.reps = make([]int64, total)
	err = parallelRange(ctx, workers, fullCount, opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		cur := chunkBase[lo/chunkStates]
		for i := lo; i < hi; i++ {
			p.Schema.StateInto(i, st)
			sym.Canonicalize(st)
			if p.Schema.Index(st) == i {
				q.reps[cur] = i
				cur++
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Sweep 2: orbit weights, plus the idempotence check.
	q.weights = make([]uint32, total)
	bad := newWitness()
	err = parallelRange(ctx, workers, fullCount, opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		for i := lo; i < hi; i++ {
			p.Schema.StateInto(i, st)
			sym.Canonicalize(st)
			qid, ok := q.lookupRep(p.Schema.Index(st))
			if !ok {
				bad.offer(i, 0)
				continue
			}
			atomic.AddUint32(&q.weights[qid], 1)
		}
	})
	if err != nil {
		return nil, err
	}
	if bad.found() {
		st := p.Schema.StateAt(bad.state)
		sym.Canonicalize(st)
		return nil, fmt.Errorf("verify: symmetry %q is not idempotent: canonical image %s of %s is not itself canonical",
			sym.Name, st, p.Schema.StateAt(bad.state))
	}

	if opts.QuotientMap == MapFingerprint {
		if err := q.buildFingerprints(p.Schema); err != nil {
			return nil, err
		}
	}
	span.end(2 * fullCount)
	return q, nil
}

// buildFingerprints populates the open-addressed fingerprint table from
// the representative list, refusing on any 64-bit collision.
func (q *quotient) buildFingerprints(schema *program.Schema) error {
	size := uint64(1)
	if n := len(q.reps); n > 0 {
		size = uint64(1) << bits.Len(uint(2*n))
	}
	q.fpKeys = make([]uint64, size)
	q.fpVals = make([]int32, size)
	q.fpMask = size - 1
	st := schema.NewState()
	for qid, fi := range q.reps {
		schema.StateInto(fi, st)
		fp := stateFingerprint(st)
		slot := fp & q.fpMask
		for {
			v := q.fpVals[slot]
			if v == 0 {
				q.fpKeys[slot] = fp
				q.fpVals[slot] = int32(qid) + 1
				break
			}
			if q.fpKeys[slot] == fp {
				return &FingerprintCollision{
					Fingerprint: fp,
					A:           schema.StateAt(q.reps[v-1]),
					B:           schema.StateAt(fi),
				}
			}
			slot = (slot + 1) & q.fpMask
		}
	}
	return nil
}

// bytes reports the quotient bookkeeping footprint (reps + weights +
// fingerprint table), for the canonicalize span and benchmarks.
func (q *quotient) bytes() int64 {
	return 8*int64(len(q.reps)) + 4*int64(len(q.weights)) +
		8*int64(len(q.fpKeys)) + 4*int64(len(q.fpVals))
}
