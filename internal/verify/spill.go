package verify

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// The spill tier (DESIGN §13). When an instance's CSR does not fit the
// in-RAM budget, the index arrays are written to anonymous temp files in
// the spill directory, mmap'd read-write for the fill sweeps, and
// remapped read-only for the passes — converge/leads_to/stair then stream
// edges at page-cache/disk bandwidth instead of recomputing guards. BFS
// frontiers that outgrow their run threshold overflow to sorted temp-file
// runs drained by a streaming k-way merge.
//
// Temp-file hygiene: segments and runs are opened with O_TMPFILE (never
// visible in the directory, reclaimed by the kernel on any exit) and fall
// back to named ".csspill-<pid>-<seq>" files that are removed on Close;
// opening an arena first sweeps the directory for named leftovers of dead
// processes, so a crash mid-spill never leaks disk past the next run.

const (
	// oTmpfileLinux is O_TMPFILE (__O_TMPFILE|O_DIRECTORY) on linux; the
	// syscall package predates the flag so it is spelled here.
	oTmpfileLinux = 0x410000
	// spillPrefix names the visible fallback files the crash sweep scans.
	spillPrefix = ".csspill-"
	// spoolRunEntries is a frontier spool's per-worker buffer threshold:
	// past it the buffer is sorted and flushed to a run file (8 MiB).
	spoolRunEntries = 1 << 20
	// spoolBatchEntries is the merge drain's batch size.
	spoolBatchEntries = 1 << 20
)

// spillNoOTmpfile forces the named-file fallback; the crash-sweep test
// sets it so mid-kill leftovers are actually visible on disk.
var spillNoOTmpfile bool

// spillArena owns every disk-backed artifact of one spill-mode space: the
// mmap'd CSR segment files and the byte accounting the `spill` span and
// csserved's spill counter report. The Space that created it closes it;
// derived stage spaces share it by pointer without ownership.
type spillArena struct {
	dir string

	mu       sync.Mutex
	seq      int
	segs     []*spillSeg
	segBytes int64
	closed   bool

	spooled atomic.Int64 // bytes written through frontier spools
}

// spillSeg is one mmap-backed segment file.
type spillSeg struct {
	f    *os.File
	path string // non-empty when the named fallback was used
	data []byte
}

// newSpillArena opens (creating if needed) the spill directory, sweeps
// named leftovers of dead processes, and returns an empty arena.
func newSpillArena(dir string) (*spillArena, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("verify: spill dir: %w", err)
	}
	sweepSpillLeftovers(dir)
	return &spillArena{dir: dir}, nil
}

// sweepSpillLeftovers removes ".csspill-<pid>-*" files whose pid is no
// longer alive — the crash-recovery half of the temp hygiene contract
// (O_TMPFILE files need no sweep; the kernel reclaims them).
func sweepSpillLeftovers(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, spillPrefix) {
			continue
		}
		rest := name[len(spillPrefix):]
		dash := strings.IndexByte(rest, '-')
		if dash <= 0 {
			continue
		}
		pid, err := strconv.Atoi(rest[:dash])
		if err != nil || pid <= 0 || pid == os.Getpid() || processAlive(pid) {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}

// processAlive probes a pid with signal 0. EPERM means the process exists
// but belongs to someone else — alive, so its files are left in place.
func processAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

// tempFile opens an unlinked temp file in the arena directory: O_TMPFILE
// when the kernel and filesystem support it, else a named file recorded
// for removal at Close (and by the next run's crash sweep).
func (ar *spillArena) tempFile() (f *os.File, path string, err error) {
	if !spillNoOTmpfile {
		fd, err := syscall.Open(ar.dir, oTmpfileLinux|syscall.O_RDWR|syscall.O_CLOEXEC, 0o600)
		if err == nil {
			return os.NewFile(uintptr(fd), filepath.Join(ar.dir, "csspill-anon")), "", nil
		}
	}
	ar.mu.Lock()
	ar.seq++
	seq := ar.seq
	ar.mu.Unlock()
	path = filepath.Join(ar.dir, fmt.Sprintf("%s%d-%d", spillPrefix, os.Getpid(), seq))
	f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o600)
	if err != nil {
		return nil, "", fmt.Errorf("verify: spill temp file: %w", err)
	}
	return f, path, nil
}

// allocSegment creates an n-byte segment file and maps it read-write. The
// caller fills it and then seals it read-only.
func (ar *spillArena) allocSegment(n int64) (*spillSeg, error) {
	f, path, err := ar.tempFile()
	if err != nil {
		return nil, err
	}
	seg := &spillSeg{f: f, path: path}
	if n > 0 {
		if err := f.Truncate(n); err != nil {
			seg.discard()
			return nil, fmt.Errorf("verify: spill segment truncate: %w", err)
		}
		data, err := syscall.Mmap(int(f.Fd()), 0, int(n),
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
		if err != nil {
			seg.discard()
			return nil, fmt.Errorf("verify: spill segment mmap: %w", err)
		}
		seg.data = data
	}
	ar.mu.Lock()
	if ar.closed {
		ar.mu.Unlock()
		seg.discard()
		return nil, errors.New("verify: spill arena closed")
	}
	ar.segs = append(ar.segs, seg)
	ar.segBytes += n
	ar.mu.Unlock()
	return seg, nil
}

// seal remaps the filled segment read-only: the pass kernels can only
// stream it from then on, and a stray write faults instead of corrupting
// the index.
func (seg *spillSeg) seal() {
	if seg.data != nil {
		_ = syscall.Mprotect(seg.data, syscall.PROT_READ)
	}
}

// discard unmaps, closes and removes the segment (error path only).
func (seg *spillSeg) discard() {
	if seg.data != nil {
		_ = syscall.Munmap(seg.data)
		seg.data = nil
	}
	_ = seg.f.Close()
	if seg.path != "" {
		_ = os.Remove(seg.path)
	}
}

// segmentBytes returns the total bytes materialized into segment files.
func (ar *spillArena) segmentBytes() int64 {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.segBytes
}

// close unmaps and removes every artifact. Idempotent. After close, any
// slice viewing a segment is invalid — hence Space.Close's contract that
// no pass may run afterwards.
func (ar *spillArena) close() error {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if ar.closed {
		return nil
	}
	ar.closed = true
	var first error
	for _, seg := range ar.segs {
		if seg.data != nil {
			if err := syscall.Munmap(seg.data); err != nil && first == nil {
				first = err
			}
			seg.data = nil
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
		if seg.path != "" {
			_ = os.Remove(seg.path)
		}
	}
	ar.segs = nil
	return first
}

// u32view and i32view reinterpret an mmap'd segment as the CSR arrays it
// stores. The byte slice must stay mapped for the views' lifetime.
func u32view(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func i32view(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func int64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// frontierSpool accumulates one BFS wave with bounded RAM: per-worker
// buffers (no locking on the hot path) that overflow as sorted fixed-size
// runs to temp files, drained by a streaming merge in sorted batches.
// Wave membership is a set (the emitting passes claim states by atomic
// decrement-to-zero or test-and-set), so the merged stream — and with it
// every verdict and metric — is deterministic regardless of worker count
// or flush timing.
type frontierSpool struct {
	ar   *spillArena
	bufs [][]int64

	mu   sync.Mutex
	runs []spoolRun

	total atomic.Int64
	err   atomic.Pointer[error]
}

type spoolRun struct {
	f    *os.File
	path string
	n    int64
}

func newFrontierSpool(ar *spillArena, workers int) *frontierSpool {
	return &frontierSpool{ar: ar, bufs: make([][]int64, workers)}
}

// add appends one state to the wave from the given worker. Flush errors
// are latched and surfaced by drain (the sharded pass closures have no
// error channel of their own).
func (fs *frontierSpool) add(worker int, v int64) {
	fs.bufs[worker] = append(fs.bufs[worker], v)
	fs.total.Add(1)
	if len(fs.bufs[worker]) >= spoolRunEntries {
		if err := fs.flush(worker); err != nil {
			fs.err.CompareAndSwap(nil, &err)
		}
	}
}

// size returns the number of states accumulated so far.
func (fs *frontierSpool) size() int64 { return fs.total.Load() }

// flush sorts worker w's buffer and writes it out as one run.
func (fs *frontierSpool) flush(w int) error {
	buf := fs.bufs[w]
	slices.Sort(buf)
	f, path, err := fs.ar.tempFile()
	if err != nil {
		return err
	}
	if _, err := f.Write(int64Bytes(buf)); err != nil {
		_ = f.Close()
		if path != "" {
			_ = os.Remove(path)
		}
		return fmt.Errorf("verify: frontier run write: %w", err)
	}
	fs.ar.spooled.Add(int64(len(buf)) * 8)
	fs.mu.Lock()
	fs.runs = append(fs.runs, spoolRun{f: f, path: path, n: int64(len(buf))})
	fs.mu.Unlock()
	fs.bufs[w] = buf[:0]
	return nil
}

// drain merges the spilled runs and the in-memory leftovers into one
// ascending stream and feeds it to fn in batches of at most
// spoolBatchEntries states, then releases every run file. The spool is
// spent afterwards.
func (fs *frontierSpool) drain(fn func(batch []int64) error) error {
	defer fs.release()
	if ep := fs.err.Load(); ep != nil {
		return *ep
	}
	var mem []int64
	for _, b := range fs.bufs {
		mem = append(mem, b...)
	}
	slices.Sort(mem)
	if len(fs.runs) == 0 {
		for lo := 0; lo < len(mem); lo += spoolBatchEntries {
			hi := min(lo+spoolBatchEntries, len(mem))
			if err := fn(mem[lo:hi]); err != nil {
				return err
			}
		}
		return nil
	}
	readers := make([]*runReader, 0, len(fs.runs)+1)
	for _, r := range fs.runs {
		readers = append(readers, &runReader{f: r.f, remain: r.n})
	}
	if len(mem) > 0 {
		readers = append(readers, &runReader{buf: mem, have: len(mem)})
	}
	h := make([]*runReader, 0, len(readers))
	for _, r := range readers {
		ok, err := r.load()
		if err != nil {
			return err
		}
		if ok {
			h = append(h, r)
			up(h, len(h)-1)
		}
	}
	batch := make([]int64, 0, spoolBatchEntries)
	for len(h) > 0 {
		r := h[0]
		batch = append(batch, r.head())
		ok, err := r.advance()
		if err != nil {
			return err
		}
		if !ok {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		down(h, 0)
		if len(batch) == spoolBatchEntries {
			if err := fn(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		return fn(batch)
	}
	return nil
}

// release closes and removes every run file and drops the buffers.
func (fs *frontierSpool) release() {
	fs.mu.Lock()
	runs := fs.runs
	fs.runs = nil
	fs.mu.Unlock()
	for _, r := range runs {
		_ = r.f.Close()
		if r.path != "" {
			_ = os.Remove(r.path)
		}
	}
	for i := range fs.bufs {
		fs.bufs[i] = nil
	}
	fs.total.Store(0)
}

// runReader streams one sorted run (a file, or the in-memory leftovers)
// in fixed-size chunks.
type runReader struct {
	f      *os.File
	off    int64
	remain int64 // entries left in the file past the loaded chunk
	buf    []int64
	pos    int
	have   int
}

const runReadEntries = 1 << 16 // 512 KiB read chunks

func (r *runReader) head() int64 { return r.buf[r.pos] }

// load pulls the next chunk; returns false at end of run.
func (r *runReader) load() (bool, error) {
	if r.f == nil {
		return r.have > 0, nil // in-memory run is fully loaded up front
	}
	n := min(r.remain, int64(runReadEntries))
	if n == 0 {
		return false, nil
	}
	if int64(cap(r.buf)) < n {
		r.buf = make([]int64, n)
	}
	r.buf = r.buf[:n]
	if _, err := r.f.ReadAt(int64Bytes(r.buf), r.off); err != nil {
		return false, fmt.Errorf("verify: frontier run read: %w", err)
	}
	r.off += n * 8
	r.remain -= n
	r.pos, r.have = 0, int(n)
	return true, nil
}

// advance moves past the current head; returns false when the run is dry.
func (r *runReader) advance() (bool, error) {
	r.pos++
	if r.pos < r.have {
		return true, nil
	}
	if r.f == nil {
		return false, nil
	}
	return r.load()
}

// up and down are the sift operations of the merge's binary min-heap,
// keyed by each reader's current head value.
func up(h []*runReader, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].head() <= h[i].head() {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func down(h []*runReader, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h) && h[l].head() < h[s].head() {
			s = l
		}
		if r < len(h) && h[r].head() < h[s].head() {
			s = r
		}
		if s == i {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}
