package verify

import (
	"time"

	"nonmask/internal/obs"
)

// The pass taxonomy (DESIGN §8). Every sharded pass of the checker emits
// exactly one obs.PassStat span per execution under one of these names;
// stage-level re-entries (a stair step's convergence check, leads-to's
// embedded livelock analysis) emit their own spans, so a trace is the
// full nesting-flattened history of what the checker did.
const (
	// PassEnumerate is state-space enumeration plus S/T evaluation.
	PassEnumerate = "enumerate"
	// PassSuccTable is the construction of the forward CSR successor
	// index: an edge-counting sweep plus a fill sweep. Its span carries
	// the enabled-edge count and the index's byte size (bytes 0 when the
	// edge set busted the budget and nothing was materialized).
	PassSuccTable = "succ_table"
	// PassPredTable is the lazy construction of the reverse CSR
	// (predecessor index), emitted at most once per Check — stage passes
	// reuse the cached index.
	PassPredTable = "pred_table"
	// PassClosure is one closure scan of one predicate.
	PassClosure = "closure"
	// PassConvergeUnfair is the arbitrary-daemon convergence fixpoint
	// (Kahn wave peeling, or the sequential DFS fallback).
	PassConvergeUnfair = "converge_unfair"
	// PassConvergeFair is the weakly-fair-daemon SCC analysis, including
	// its region-graph build.
	PassConvergeFair = "converge_fair"
	// PassFaultSpan is the program+fault reachability BFS.
	PassFaultSpan = "fault_span"
	// PassLeadsTo is a leads-to (progress) check's reachability stage.
	PassLeadsTo = "leads_to"
	// PassStair is a whole convergence-stair verification (its stage
	// checks nest their own closure/convergence spans).
	PassStair = "stair"
	// PassVariant is a variant-function validation scan.
	PassVariant = "variant"
	// PassPreserve is one exhaustive preservation scan.
	PassPreserve = "preserve"
	// PassDistanceProfile is the metrics engine's distance-to-invariant
	// BFS over the fault span (metrics.go).
	PassDistanceProfile = "distance_profile"
	// PassExpectedSteps is the uniform-random-daemon expected-stabilization
	// value iteration (metrics.go).
	PassExpectedSteps = "expected_steps"
	// PassConstraintCost is one constraint's recovery-cost computation:
	// stable-subset shrink plus the re-targeted convergence peel (which
	// nests its own converge_unfair span).
	PassConstraintCost = "constraint_cost"
	// PassCanonicalize is the symmetry-quotient construction: the
	// representative-discovery and orbit-weight sweeps over the full
	// product (DESIGN §13). Emitted once per quotient space.
	PassCanonicalize = "canonicalize"
	// PassSpill is the per-Check summary of disk traffic on the spill
	// tier: its SpilledBytes field totals segment-file and frontier-run
	// bytes, its Bytes field the resident segment footprint. The
	// index-building passes additionally carry their own SpilledBytes.
	PassSpill = "spill"
)

// passSpan times one verifier pass. startPass resets the options'
// progress counter to the new pass and emits the tracer's start event;
// end emits the completed obs.PassStat. Error paths abandon the span
// without ending it — a trace only ever contains finished passes.
//
// The span is a by-value helper (no allocation); with tracing and
// progress off its cost is two time.Now calls per pass.
type passSpan struct {
	opts     Options
	name     string
	start    time.Time
	frontier int64
	spilled  int64
}

// startPass begins the named pass. total is the progress size hint
// (0 = unknown).
func startPass(opts Options, name string, total int64) passSpan {
	opts.Progress.StartPass(name, total)
	if opts.Tracer != nil {
		opts.Tracer.PassStart(name, total)
	}
	return passSpan{opts: opts, name: name, start: time.Now()}
}

// observeFrontier records a BFS frontier/wave size; the span keeps the peak.
func (s *passSpan) observeFrontier(n int64) {
	if n > s.frontier {
		s.frontier = n
	}
}

// addSpilled accrues bytes written to disk during the pass (mmap'd CSR
// segments, frontier spool runs).
func (s *passSpan) addSpilled(n int64) { s.spilled += n }

// end completes the span with the pass's exact processed-state count and
// delivers it to the tracer.
func (s *passSpan) end(states int64) { s.endSized(states, 0, 0) }

// endSized is end for the index-building passes, which additionally report
// the enabled-edge count and the byte size of the structure they built.
func (s *passSpan) endSized(states, edges, bytes int64) {
	if s.opts.Tracer == nil {
		return
	}
	s.opts.Tracer.PassEnd(obs.PassStat{
		Pass:         s.name,
		States:       states,
		Frontier:     s.frontier,
		Workers:      s.opts.workers(),
		Edges:        edges,
		Bytes:        bytes,
		SpilledBytes: s.spilled,
		ElapsedMS:    float64(time.Since(s.start)) / float64(time.Millisecond),
	})
}
