package verify

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBitsetBasic(t *testing.T) {
	for _, n := range []int64{0, 1, 63, 64, 65, 127, 128, 1000} {
		b := newBitset(n)
		if got := b.count(); got != 0 {
			t.Fatalf("n=%d: fresh bitset count = %d, want 0", n, got)
		}
		for i := int64(0); i < n; i++ {
			if b.get(i) {
				t.Fatalf("n=%d: bit %d set in fresh bitset", n, i)
			}
		}
		// Set every third bit.
		want := int64(0)
		for i := int64(0); i < n; i += 3 {
			b.set(i)
			want++
		}
		if got := b.count(); got != want {
			t.Fatalf("n=%d: count = %d, want %d", n, got, want)
		}
		for i := int64(0); i < n; i++ {
			if b.get(i) != (i%3 == 0) {
				t.Fatalf("n=%d: bit %d = %v, want %v", n, i, b.get(i), i%3 == 0)
			}
		}
	}
}

func TestBitsetAgainstBoolSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 513
	b := newBitset(n)
	ref := make([]bool, n)
	for op := 0; op < 4000; op++ {
		i := rng.Int63n(n)
		b.set(i)
		ref[i] = true
	}
	refCount := int64(0)
	for i, v := range ref {
		if v {
			refCount++
		}
		if b.get(int64(i)) != v {
			t.Fatalf("bit %d = %v, want %v", i, b.get(int64(i)), v)
		}
	}
	if b.count() != refCount {
		t.Fatalf("count = %d, want %d", b.count(), refCount)
	}
}

func TestBitsetTestAndSet(t *testing.T) {
	const n = 200
	b := newBitset(n)
	if !b.testAndSet(5) {
		t.Fatal("first testAndSet(5) reported already-set")
	}
	if b.testAndSet(5) {
		t.Fatal("second testAndSet(5) reported newly-set")
	}
	if !b.get(5) {
		t.Fatal("bit 5 not set after testAndSet")
	}
}

// TestBitsetTestAndSetConcurrent checks the claim-exactly-once contract:
// when many goroutines race testAndSet on the same bits, each bit is won
// exactly once.
func TestBitsetTestAndSetConcurrent(t *testing.T) {
	const n = 1 << 12
	const workers = 8
	b := newBitset(n)
	wins := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < n; i++ {
				if b.testAndSet(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Fatalf("bits won %d times total, want exactly %d", total, n)
	}
	if b.count() != n {
		t.Fatalf("count = %d, want %d", b.count(), n)
	}
}

func TestBitsetCombinators(t *testing.T) {
	const n = 130
	a := newBitset(n)
	b := newBitset(n)
	for i := int64(0); i < n; i += 2 {
		a.set(i) // evens
	}
	for i := int64(0); i < n; i += 3 {
		b.set(i) // multiples of 3
	}
	wantAnd, wantAndNot := int64(0), int64(0)
	for i := int64(0); i < n; i++ {
		switch {
		case i%2 == 0 && i%3 == 0:
			wantAnd++
		case i%2 == 0:
			wantAndNot++
		}
	}
	if got := countAnd(a, b); got != wantAnd {
		t.Fatalf("countAnd = %d, want %d", got, wantAnd)
	}
	if got := countAndNot(a, b); got != wantAndNot {
		t.Fatalf("countAndNot = %d, want %d", got, wantAndNot)
	}
	// firstAndNot: first even non-multiple-of-3 is 2.
	if got := firstAndNot(a, b); got != 2 {
		t.Fatalf("firstAndNot = %d, want 2", got)
	}
	// Subset: evens-and-multiples-of-6 ⊆ evens → no witness.
	six := newBitset(n)
	for i := int64(0); i < n; i += 6 {
		six.set(i)
	}
	if got := firstAndNot(six, a); got != -1 {
		t.Fatalf("firstAndNot on subset = %d, want -1", got)
	}
	// orInto accumulates.
	c := newBitset(n)
	c.orInto(a)
	c.orInto(b)
	wantOr := int64(0)
	for i := int64(0); i < n; i++ {
		if i%2 == 0 || i%3 == 0 {
			wantOr++
		}
	}
	if got := c.count(); got != wantOr {
		t.Fatalf("orInto count = %d, want %d", got, wantOr)
	}
}
