package verify

import (
	"fmt"

	"nonmask/internal/program"
)

// SpanResult is the outcome of a fault-span computation.
type SpanResult struct {
	// Span is a predicate holding exactly at the states reachable from the
	// initial region under program and fault actions. It is closed in both
	// by construction (paper Section 3: "a program fault-span identifies a
	// set of states that is kept closed under the execution of program
	// actions as well as fault actions").
	Span *program.Predicate
	// States is the number of states in the span.
	States int64
	// Total is the size of the full state space.
	Total int64
}

// FaultSpan computes the smallest closed fault-span containing the initial
// region: the set of states reachable from any init state by program
// actions and the given fault actions. This mechanizes the paper's view
// that "all classes of faults can be represented as actions that change the
// program state" (Section 3).
func FaultSpan(p *program.Program, faults []*program.Action, init *program.Predicate,
	opts Options) (*SpanResult, error) {
	count, ok := p.Schema.StateCount()
	if !ok || count > opts.maxStates() {
		return nil, fmt.Errorf("verify: state space too large for fault-span computation (%d states)", count)
	}
	inSpan := make([]bool, count)
	var frontier []int64
	for i := int64(0); i < count; i++ {
		if init.Holds(p.Schema.StateAt(i)) {
			inSpan[i] = true
			frontier = append(frontier, i)
		}
	}
	if len(frontier) == 0 {
		return nil, fmt.Errorf("verify: initial region is empty")
	}
	all := make([]*program.Action, 0, len(p.Actions)+len(faults))
	all = append(all, p.Actions...)
	all = append(all, faults...)
	var spanCount int64 = int64(len(frontier))
	for len(frontier) > 0 {
		i := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		st := p.Schema.StateAt(i)
		for _, a := range all {
			if !a.Guard(st) {
				continue
			}
			j := p.Schema.Index(a.Apply(st))
			if !inSpan[j] {
				inSpan[j] = true
				spanCount++
				frontier = append(frontier, j)
			}
		}
	}
	schema := p.Schema
	span := &program.Predicate{
		Name: fmt.Sprintf("fault-span(%s)", init.Name),
		Eval: func(st *program.State) bool { return inSpan[schema.Index(st)] },
	}
	// The span may depend on every variable; declare the full support.
	for v := 0; v < schema.Len(); v++ {
		span.Vars = append(span.Vars, program.VarID(v))
	}
	return &SpanResult{Span: span, States: spanCount, Total: count}, nil
}

// Classify reports the paper's Section 3 classification for a tolerant
// program: masking when S = T (semantically, over the full space),
// nonmasking when S is a strict subset of T.
type Classification int

// Classifications of a fault-tolerant program.
const (
	// Masking means the fault-span equals the invariant: faults never drive
	// the program outside its fault-free states.
	Masking Classification = iota + 1
	// Nonmasking means the fault-span strictly contains the invariant: the
	// input-output relation may be violated temporarily.
	Nonmasking
)

// String returns the classification name.
func (c Classification) String() string {
	switch c {
	case Masking:
		return "masking"
	case Nonmasking:
		return "nonmasking"
	default:
		return fmt.Sprintf("Classification(%d)", int(c))
	}
}

// Classify compares S and T semantically over the enumerated space.
func (sp *Space) Classify() Classification {
	for i := int64(0); i < sp.Count; i++ {
		if sp.inT[i] && !sp.inS[i] {
			return Nonmasking
		}
	}
	return Masking
}
