package verify

import (
	"context"
	"fmt"

	"nonmask/internal/program"
)

// SpanResult is the outcome of a fault-span computation.
type SpanResult struct {
	// Span is a predicate holding exactly at the states reachable from the
	// initial region under program and fault actions. It is closed in both
	// by construction (paper Section 3: "a program fault-span identifies a
	// set of states that is kept closed under the execution of program
	// actions as well as fault actions").
	Span *program.Predicate
	// States is the number of states in the span.
	States int64
	// Total is the size of the full state space.
	Total int64
}

// FaultSpanContext computes the smallest closed fault-span containing the
// initial region: the set of states reachable from any init state by
// program actions and the given fault actions. This mechanizes the
// paper's view that "all classes of faults can be represented as actions
// that change the program state" (Section 3). Check runs it when
// WithFaults is given. The initial-region scan and each BFS level are
// sharded across opts.Workers goroutines; frontier deduplication uses
// atomic test-and-set on the span bitset, so the computed span is exact
// for any worker count.
func FaultSpanContext(ctx context.Context, p *program.Program, faults []*program.Action,
	init *program.Predicate, opts Options) (*SpanResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	count, ok := p.Schema.StateCount()
	if !ok || count > opts.maxStates() {
		return nil, fmt.Errorf("verify: state space too large for fault-span computation (%d states)", count)
	}
	all := make([]*program.Action, 0, len(p.Actions)+len(faults))
	all = append(all, p.Actions...)
	all = append(all, faults...)

	workers := opts.workers()
	scr := newSchemaPairs(p.Schema, workers)
	inSpan := newBitset(count)
	lists := make([][]int64, workers)
	span := startPass(opts, PassFaultSpan, count)
	err := parallelRange(ctx, workers, count, opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker].st
		for i := lo; i < hi; i++ {
			p.Schema.StateInto(i, st)
			if init.Holds(st) {
				inSpan.set(i)
				lists[worker] = append(lists[worker], i)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	frontier := flatten(lists)
	if len(frontier) == 0 {
		return nil, fmt.Errorf("verify: initial region is empty")
	}
	spanCount := int64(len(frontier))
	for len(frontier) > 0 {
		span.observeFrontier(int64(len(frontier)))
		next := make([][]int64, workers)
		err := parallelRange(ctx, workers, int64(len(frontier)), opts.Progress, func(worker int, lo, hi int64) {
			st, tmp := scr[worker].st, scr[worker].tmp
			for w := lo; w < hi; w++ {
				p.Schema.StateInto(frontier[w], st)
				for _, a := range all {
					if !a.Guard(st) {
						continue
					}
					a.ApplyInto(st, tmp)
					if j := p.Schema.Index(tmp); inSpan.testAndSet(j) {
						next[worker] = append(next[worker], j)
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		frontier = flatten(next)
		spanCount += int64(len(frontier))
	}
	schema := p.Schema
	pred := &program.Predicate{
		Name: fmt.Sprintf("fault-span(%s)", init.Name),
		Eval: func(st *program.State) bool { return inSpan.get(schema.Index(st)) },
	}
	// The span may depend on every variable; declare the full support.
	for v := 0; v < schema.Len(); v++ {
		pred.Vars = append(pred.Vars, program.VarID(v))
	}
	span.end(spanCount)
	return &SpanResult{Span: pred, States: spanCount, Total: count}, nil
}

// Classify reports the paper's Section 3 classification for a tolerant
// program: masking when S = T (semantically, over the full space),
// nonmasking when S is a strict subset of T.
type Classification int

// Classifications of a fault-tolerant program.
const (
	// Masking means the fault-span equals the invariant: faults never drive
	// the program outside its fault-free states.
	Masking Classification = iota + 1
	// Nonmasking means the fault-span strictly contains the invariant: the
	// input-output relation may be violated temporarily.
	Nonmasking
)

// String returns the classification name.
func (c Classification) String() string {
	switch c {
	case Masking:
		return "masking"
	case Nonmasking:
		return "nonmasking"
	default:
		return fmt.Sprintf("Classification(%d)", int(c))
	}
}

// Classify compares S and T semantically over the enumerated space.
func (sp *Space) Classify() Classification {
	if firstAndNot(sp.inT, sp.inS) >= 0 {
		return Nonmasking
	}
	return Masking
}
