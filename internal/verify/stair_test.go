package verify

import (
	"context"
	"strings"
	"testing"

	"nonmask/internal/program"
)

// twoPhase builds a program converging in two stages: first a := 0 (stage
// predicate), then b := 0 (final S), where fixing b requires a = 0.
func twoPhase(t *testing.T) (*program.Program, *program.Predicate, *program.Predicate) {
	t.Helper()
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 3))
	b := s.MustDeclare("b", program.IntRange(0, 3))
	p := program.New("two-phase", s)
	p.Add(
		program.NewAction("fix-a", program.Convergence,
			[]program.VarID{a}, []program.VarID{a},
			func(st *program.State) bool { return st.Get(a) != 0 },
			func(st *program.State) { st.Set(a, st.Get(a)-1) }),
		program.NewAction("fix-b", program.Convergence,
			[]program.VarID{a, b}, []program.VarID{b},
			func(st *program.State) bool { return st.Get(a) == 0 && st.Get(b) != 0 },
			func(st *program.State) { st.Set(b, 0) }),
	)
	aZero := program.NewPredicate("a=0", []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) == 0 })
	S := program.NewPredicate("a=0 && b=0", []program.VarID{a, b},
		func(st *program.State) bool { return st.Get(a) == 0 && st.Get(b) == 0 })
	_ = aZero
	return p, aZero, S
}

func TestCheckStairAccepts(t *testing.T) {
	p, mid, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckStair([]*program.Predicate{mid}, false)
	if !res.OK {
		t.Fatalf("stair rejected: %+v", res.Steps)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
	for _, st := range res.Steps {
		if !st.Closed || !st.Converges {
			t.Errorf("step %s -> %s failed: %s", st.From, st.To, st.Detail)
		}
		if !strings.Contains(st.Detail, "worst") {
			t.Errorf("step detail %q lacks worst-steps", st.Detail)
		}
	}
}

func TestCheckStairRejectsUnnested(t *testing.T) {
	p, _, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// b=0 is not a superset of S... it is. Use a disjoint predicate: a=3.
	bad := program.NewPredicate("a=3", []program.VarID{0},
		func(st *program.State) bool { return st.Get(0) == 3 })
	res := sp.CheckStair([]*program.Predicate{bad}, false)
	if res.OK {
		t.Fatal("unnested stair accepted")
	}
}

func TestCheckStairRejectsOpenStage(t *testing.T) {
	// Intermediate predicate that is not closed: b=1 can be left by fix-b?
	// fix-b requires a=0; choose mid = "b<=1" which fix-a preserves but...
	// construct explicitly: mid = a<=1 is closed (fix-a decreases a), but
	// mid = a=1 is NOT closed (fix-a maps a=1 to a=0... that EXITS a=1).
	p, _, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	open := program.NewPredicate("a=1", []program.VarID{0},
		func(st *program.State) bool { return st.Get(0) == 1 })
	res := sp.CheckStair([]*program.Predicate{open}, false)
	if res.OK {
		t.Fatal("stair with non-closed stage accepted")
	}
}

func TestCheckStairEmptyIsPlainConvergence(t *testing.T) {
	p, _, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.CheckStair(nil, false)
	if !res.OK || len(res.Steps) != 1 {
		t.Errorf("empty stair: %+v", res)
	}
}

func TestCheckVariantAcceptsWorstDistances(t *testing.T) {
	p, _, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	dist, ok := sp.WorstDistances()
	if !ok {
		t.Fatal("WorstDistances failed")
	}
	v := sp.CheckVariant(func(st *program.State) int64 {
		return int64(dist[p.Schema.Index(st)])
	})
	if v != nil {
		t.Errorf("exact distance table rejected as variant: %v", v)
	}
}

func TestCheckVariantAcceptsHandWritten(t *testing.T) {
	p, _, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// The natural variant: a + b... fix-b sets b to 0 decreasing the sum;
	// fix-a decreases a. Strictly decreasing on every step.
	a := p.Schema.MustLookup("a")
	b := p.Schema.MustLookup("b")
	v := sp.CheckVariant(func(st *program.State) int64 {
		return int64(st.Get(a)) + int64(st.Get(b))
	})
	if v != nil {
		t.Errorf("hand-written variant rejected: %v", v)
	}
}

func TestCheckVariantRejectsNonDecreasing(t *testing.T) {
	p, _, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// A constant is not a variant.
	v := sp.CheckVariant(func(*program.State) int64 { return 7 })
	if v == nil {
		t.Fatal("constant accepted as variant")
	}
	if !strings.Contains(v.Error(), "does not decrease") {
		t.Errorf("violation message = %q", v.Error())
	}
}

func TestCheckVariantRejectsNegative(t *testing.T) {
	p, _, S := twoPhase(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	v := sp.CheckVariant(func(*program.State) int64 { return -1 })
	if v == nil {
		t.Fatal("negative variant accepted")
	}
}
