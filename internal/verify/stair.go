package verify

import (
	"context"
	"fmt"

	"nonmask/internal/program"
)

// StairResult reports the verification of a convergence stair.
type StairResult struct {
	// OK is true when every step of the stair holds.
	OK bool
	// Steps records the per-step verdicts, from T down to S.
	Steps []StairStep
}

// StairStep is one stage of a convergence stair.
type StairStep struct {
	// From and To name the stage's predicates (R_i ⊇ R_{i+1}).
	From, To string
	// Closed reports that To is closed in the program.
	Closed bool
	// Converges reports that every computation from From reaches To.
	Converges bool
	// Detail carries the counterexample summary when a check fails.
	Detail string
}

// CheckStair verifies a convergence stair (Gouda & Multari, cited by the
// paper in Section 7: "a convergence stair of height two"): a chain of
// closed predicates T = R_0 ⊇ R_1 ⊇ ... ⊇ R_n = S such that from each R_i
// every computation reaches R_{i+1}. Stairs let cyclic constraint graphs
// be verified stage by stage: within each stage the graph restricted to
// the stage's states may be self-looping even when the global graph is
// cyclic.
//
// stairs lists the intermediate predicates R_1..R_{n-1}; the space's T and
// S bound the chain. Convergence at each stage is checked under the
// arbitrary daemon when fair is false, and under the weakly fair daemon
// when fair is true (some layered compositions — e.g. a wave over a
// not-yet-stable spanning tree — converge only fairly; see
// internal/protocols/composed). Implications R_i ⊇ R_{i+1} are checked
// semantically.
func (sp *Space) CheckStair(stairs []*program.Predicate, fair bool) *StairResult {
	res, _ := sp.CheckStairContext(context.Background(), stairs, fair)
	return res
}

// CheckStairContext is CheckStair with cancellation. Each chain predicate
// is evaluated once into a bitset (sharded); stage convergence runs on
// derived spaces sharing this space's successor table, so the stage checks
// cost no re-enumeration.
func (sp *Space) CheckStairContext(ctx context.Context, stairs []*program.Predicate, fair bool) (*StairResult, error) {
	// The stair span wraps the whole chain; each stage's closure and
	// convergence checks nest their own spans inside it.
	span := startPass(sp.opts, PassStair, sp.Count)
	chain := make([]*program.Predicate, 0, len(stairs)+2)
	chain = append(chain, sp.T)
	chain = append(chain, stairs...)
	chain = append(chain, sp.S)

	bits := make([]bitset, len(chain))
	for i, pred := range chain {
		var err error
		if bits[i], err = sp.bitsFor(ctx, pred); err != nil {
			return nil, err
		}
	}

	res := &StairResult{OK: true}
	for i := 0; i+1 < len(chain); i++ {
		from, to := chain[i], chain[i+1]
		fromBits, toBits := bits[i], bits[i+1]
		step := StairStep{From: from.Name, To: to.Name, Closed: true, Converges: true}

		// Subset: to ⊆ from.
		if idx := firstAndNot(toBits, fromBits); idx >= 0 {
			step.Converges = false
			step.Closed = false
			step.Detail = fmt.Sprintf("stair not nested: %s holds but %s fails at %s",
				to.Name, from.Name, sp.State(idx))
			res.OK = false
		}
		if step.Detail == "" {
			// Closure of the stage's target.
			v, err := sp.CheckClosedContext(ctx, to, nil)
			if err != nil {
				return nil, err
			}
			if v != nil {
				step.Closed = false
				step.Detail = v.Error()
				res.OK = false
			} else {
				// Convergence from the stage's source to its target: a stage
				// space with S := to, T := from over the shared table.
				stage := sp.derived(to, from, toBits, fromBits)
				var conv *ConvergenceResult
				var err error
				if fair {
					conv, err = stage.CheckFairConvergenceContext(ctx)
				} else {
					conv, err = stage.CheckConvergenceContext(ctx)
				}
				if err != nil {
					return nil, err
				}
				if !conv.Converges {
					step.Converges = false
					step.Detail = conv.Summary()
					res.OK = false
				} else if fair {
					step.Detail = "converges (fair)"
				} else {
					step.Detail = fmt.Sprintf("worst %d steps", conv.WorstSteps)
				}
			}
		}
		res.Steps = append(res.Steps, step)
	}
	span.end(sp.Count)
	return res, nil
}

// VariantViolation describes a step on which a claimed variant function
// fails to decrease.
type VariantViolation struct {
	State  *program.State
	Action *program.Action
	Next   *program.State
	// Before and After are the variant's values around the step.
	Before, After int64
}

// Error renders the violation.
func (v *VariantViolation) Error() string {
	return fmt.Sprintf("variant does not decrease: action %q maps %s (rank %d) to %s (rank %d)",
		v.Action.Name, v.State, v.Before, v.Next, v.After)
}

// CheckVariant verifies a claimed variant function for convergence under
// the arbitrary daemon (paper Section 8: "a variant function is a mapping
// from the program state space to a set that is wellfounded under a
// relation <, such that in each step of the computation the variant
// function value does not increase and eventually decreases").
//
// For the arbitrary daemon the required shape is strict: every enabled
// action from a T∧¬S state must strictly decrease the variant or land in
// S, and the variant must be non-negative. Together with the absence of
// T∧¬S deadlocks this implies convergence. The exact table produced by
// WorstDistances always qualifies; CheckVariant lets designers validate
// hand-written, intuition-carrying variants.
func (sp *Space) CheckVariant(variant func(*program.State) int64) *VariantViolation {
	v, _ := sp.CheckVariantContext(context.Background(), variant)
	return v
}

// CheckVariantContext is CheckVariant with cancellation and a sharded
// region scan. The variant function is called concurrently and must be
// pure, like guards and predicate bodies. The reported violation is the
// one at the lowest state index regardless of worker count.
func (sp *Space) CheckVariantContext(ctx context.Context, variant func(*program.State) int64) (*VariantViolation, error) {
	const negative = -1 // witness payload for a negative variant value
	w := newWitness()
	scr := sp.newStatePairs()
	span := startPass(sp.opts, PassVariant, sp.Count)
	err := parallelRange(ctx, sp.workers(), sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		st, tmp := scr[worker].st, scr[worker].tmp
		for i := lo; i < hi; i++ {
			if !sp.region(i) {
				continue
			}
			sp.stateInto(i, st)
			before := variant(st)
			if before < 0 {
				w.offer(i, negative)
				continue
			}
			if sp.idx != nil {
				// The witness payload is the offending edge's rank among
				// i's enabled actions (recovered by actionAt below). In
				// quotient mode the variant is evaluated at the canonical
				// successor — a symmetric variant (the only kind the
				// quotient contract admits) gives the same value either way.
				for k, j := range sp.idx.out(i) {
					if sp.inS.get(int64(j)) {
						continue
					}
					sp.stateInto(int64(j), tmp)
					if variant(tmp) >= before {
						w.offer(i, int64(k))
						break
					}
				}
				continue
			}
			for k, a := range sp.P.Actions {
				if !a.Guard(st) {
					continue
				}
				a.ApplyInto(st, tmp)
				if sp.inS.get(sp.indexOf(tmp)) {
					continue
				}
				if variant(tmp) >= before {
					w.offer(i, int64(k))
					break
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	span.end(sp.Count)
	if !w.found() {
		return nil, nil
	}
	st := sp.State(w.state)
	before := variant(st)
	if w.extra == negative {
		return &VariantViolation{State: st, Before: before, After: before,
			Action: &program.Action{Name: "(negative variant)"}}, nil
	}
	a := sp.P.Actions[w.extra]
	if sp.idx != nil {
		a = sp.actionAt(w.state, w.extra)
	}
	next := a.Apply(st)
	return &VariantViolation{State: st, Action: a, Next: next,
		Before: before, After: variant(next)}, nil
}
