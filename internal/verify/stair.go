package verify

import (
	"fmt"

	"nonmask/internal/program"
)

// StairResult reports the verification of a convergence stair.
type StairResult struct {
	// OK is true when every step of the stair holds.
	OK bool
	// Steps records the per-step verdicts, from T down to S.
	Steps []StairStep
}

// StairStep is one stage of a convergence stair.
type StairStep struct {
	// From and To name the stage's predicates (R_i ⊇ R_{i+1}).
	From, To string
	// Closed reports that To is closed in the program.
	Closed bool
	// Converges reports that every computation from From reaches To.
	Converges bool
	// Detail carries the counterexample summary when a check fails.
	Detail string
}

// CheckStair verifies a convergence stair (Gouda & Multari, cited by the
// paper in Section 7: "a convergence stair of height two"): a chain of
// closed predicates T = R_0 ⊇ R_1 ⊇ ... ⊇ R_n = S such that from each R_i
// every computation reaches R_{i+1}. Stairs let cyclic constraint graphs
// be verified stage by stage: within each stage the graph restricted to
// the stage's states may be self-looping even when the global graph is
// cyclic.
//
// stairs lists the intermediate predicates R_1..R_{n-1}; the space's T and
// S bound the chain. Convergence at each stage is checked under the
// arbitrary daemon when fair is false, and under the weakly fair daemon
// when fair is true (some layered compositions — e.g. a wave over a
// not-yet-stable spanning tree — converge only fairly; see
// internal/protocols/composed). Implications R_i ⊇ R_{i+1} are checked
// semantically.
func (sp *Space) CheckStair(stairs []*program.Predicate, fair bool) *StairResult {
	chain := make([]*program.Predicate, 0, len(stairs)+2)
	chain = append(chain, sp.T)
	chain = append(chain, stairs...)
	chain = append(chain, sp.S)

	res := &StairResult{OK: true}
	for i := 0; i+1 < len(chain); i++ {
		from, to := chain[i], chain[i+1]
		step := StairStep{From: from.Name, To: to.Name, Closed: true, Converges: true}

		// Subset: to ⊆ from.
		for idx := int64(0); idx < sp.Count; idx++ {
			st := sp.State(idx)
			if to.Holds(st) && !from.Holds(st) {
				step.Converges = false
				step.Closed = false
				step.Detail = fmt.Sprintf("stair not nested: %s holds but %s fails at %s",
					to.Name, from.Name, st)
				res.OK = false
				break
			}
		}
		if step.Detail == "" {
			// Closure of the stage's target.
			if v := sp.CheckClosed(to, nil); v != nil {
				step.Closed = false
				step.Detail = v.Error()
				res.OK = false
			} else {
				// Convergence from the stage's source to its target: build a
				// stage space reusing the program, with S := to, T := from.
				stage := &Space{
					P: sp.P, S: to, T: from, Count: sp.Count,
					inS: make([]bool, sp.Count), inT: make([]bool, sp.Count),
				}
				for idx := int64(0); idx < sp.Count; idx++ {
					st := sp.State(idx)
					stage.inS[idx] = to.Holds(st)
					stage.inT[idx] = from.Holds(st)
				}
				var conv *ConvergenceResult
				if fair {
					conv = stage.CheckFairConvergence()
				} else {
					conv = stage.CheckConvergence()
				}
				if !conv.Converges {
					step.Converges = false
					step.Detail = conv.Summary()
					res.OK = false
				} else if fair {
					step.Detail = "converges (fair)"
				} else {
					step.Detail = fmt.Sprintf("worst %d steps", conv.WorstSteps)
				}
			}
		}
		res.Steps = append(res.Steps, step)
	}
	return res
}

// VariantViolation describes a step on which a claimed variant function
// fails to decrease.
type VariantViolation struct {
	State  *program.State
	Action *program.Action
	Next   *program.State
	// Before and After are the variant's values around the step.
	Before, After int64
}

// Error renders the violation.
func (v *VariantViolation) Error() string {
	return fmt.Sprintf("variant does not decrease: action %q maps %s (rank %d) to %s (rank %d)",
		v.Action.Name, v.State, v.Before, v.Next, v.After)
}

// CheckVariant verifies a claimed variant function for convergence under
// the arbitrary daemon (paper Section 8: "a variant function is a mapping
// from the program state space to a set that is wellfounded under a
// relation <, such that in each step of the computation the variant
// function value does not increase and eventually decreases").
//
// For the arbitrary daemon the required shape is strict: every enabled
// action from a T∧¬S state must strictly decrease the variant or land in
// S, and the variant must be non-negative. Together with the absence of
// T∧¬S deadlocks this implies convergence. The exact table produced by
// WorstDistances always qualifies; CheckVariant lets designers validate
// hand-written, intuition-carrying variants.
func (sp *Space) CheckVariant(variant func(*program.State) int64) *VariantViolation {
	for i := int64(0); i < sp.Count; i++ {
		if !sp.inT[i] || sp.inS[i] {
			continue
		}
		st := sp.State(i)
		before := variant(st)
		if before < 0 {
			return &VariantViolation{State: st, Before: before, After: before,
				Action: &program.Action{Name: "(negative variant)"}}
		}
		for _, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			next := a.Apply(st)
			j := sp.P.Schema.Index(next)
			if sp.inS[j] {
				continue
			}
			if after := variant(next); after >= before {
				return &VariantViolation{State: st, Action: a, Next: next,
					Before: before, After: after}
			}
		}
	}
	return nil
}
