package verify_test

import (
	"context"
	"testing"

	"nonmask/internal/fault"
	"nonmask/internal/obs"
	"nonmask/internal/program"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/verify"
)

// TestCheckEmitsPassSpans pins the tracing contract: every pass Check runs
// emits exactly one span, in execution order, with exact state counts —
// and a live tracer passed via WithTracer sees the same stream.
func TestCheckEmitsPassSpans(t *testing.T) {
	inst, err := tokenring.NewRing(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	live := &obs.Collector{}
	prog := &obs.Progress{}
	ctx := context.Background()
	rep, err := verify.Check(ctx, inst.P, inst.S, nil,
		verify.WithTracer(live), verify.WithProgress(prog))
	if err != nil {
		t.Fatal(err)
	}

	want := []string{verify.PassEnumerate, verify.PassSuccTable,
		verify.PassClosure, verify.PassPredTable, verify.PassConvergeUnfair}
	if len(rep.Passes) != len(want) {
		t.Fatalf("Report.Passes = %+v, want passes %v", rep.Passes, want)
	}
	for i, name := range want {
		s := rep.Passes[i]
		if s.Pass != name {
			t.Fatalf("pass %d = %q, want %q (all: %+v)", i, s.Pass, name, rep.Passes)
		}
		if s.States != rep.Space.Count {
			t.Errorf("pass %s states = %d, want the full space %d", name, s.States, rep.Space.Count)
		}
		if s.Workers < 1 {
			t.Errorf("pass %s workers = %d", name, s.Workers)
		}
		if s.ElapsedMS < 0 {
			t.Errorf("pass %s negative elapsed %v", name, s.ElapsedMS)
		}
	}
	// The index-building passes surface the enabled-edge count and the
	// byte size of the structure they built.
	for _, i := range []int{1, 3} {
		s := rep.Passes[i]
		if s.Edges <= 0 || s.Bytes <= 0 {
			t.Errorf("pass %s edges = %d, bytes = %d, want both > 0", s.Pass, s.Edges, s.Bytes)
		}
	}
	// The converging wave peeled a non-empty frontier.
	if f := rep.Passes[4].Frontier; f <= 0 {
		t.Errorf("converge_unfair frontier = %d, want > 0", f)
	}

	// The live tracer saw the identical stream.
	liveStats := live.Passes()
	if len(liveStats) != len(rep.Passes) {
		t.Fatalf("live tracer saw %d spans, report has %d", len(liveStats), len(rep.Passes))
	}
	for i := range liveStats {
		if liveStats[i] != rep.Passes[i] {
			t.Fatalf("live span %d = %+v, report span = %+v", i, liveStats[i], rep.Passes[i])
		}
	}

	// The progress counter was fed by the hot loops and ended on the last
	// pass it saw.
	snap := prog.Snapshot()
	if snap.Pass == "" || snap.Done == 0 {
		t.Fatalf("progress never sampled a pass: %+v", snap)
	}
}

// TestPassStatsFoldsInFollowUpPasses checks that passes run on the
// report's Space after Check returns keep feeding the same collector, so
// PassStats() and the CLI -trace table include them.
func TestPassStatsFoldsInFollowUpPasses(t *testing.T) {
	inst, err := tokenring.NewRing(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := verify.Check(ctx, inst.P, inst.S, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := len(rep.PassStats())

	if _, err := rep.Space.CheckFairConvergenceContext(ctx); err != nil {
		t.Fatal(err)
	}
	stats := rep.PassStats()
	if len(stats) != before+1 {
		t.Fatalf("PassStats grew %d -> %d, want one more span", before, len(stats))
	}
	if last := stats[len(stats)-1]; last.Pass != verify.PassConvergeFair {
		t.Fatalf("follow-up span = %q, want %q", last.Pass, verify.PassConvergeFair)
	}
}

// TestCheckWithFaultsEmitsFaultSpanFirst checks the fault-span pre-pass
// traces ahead of enumeration.
func TestCheckWithFaultsEmitsFaultSpanFirst(t *testing.T) {
	inst, err := tokenring.NewRing(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Actions(inst.P.Schema, []program.VarID{inst.P.Schema.MustLookup("x[0]")})
	rep, err := verify.Check(context.Background(), inst.P, inst.S, nil,
		verify.WithFaults(faults...))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) == 0 || rep.Passes[0].Pass != verify.PassFaultSpan {
		t.Fatalf("first pass = %+v, want %q", rep.Passes, verify.PassFaultSpan)
	}
}
