// Metamorphic tests of the sharded checker: the worker count is a pure
// performance knob, so every verdict, witness, and metric must be
// bit-identical between the sequential path (Workers = 1) and the sharded
// path (Workers = 4), across protocols that exercise convergence,
// livelock, fairness, and fault-spans.
package verify_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"nonmask/internal/fault"
	"nonmask/internal/program"
	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/protocols/xyz"
	"nonmask/internal/verify"
)

// checkCase is one (program, S, T, options) instance to cross-run.
type checkCase struct {
	name    string
	p       *program.Program
	s, t    *program.Predicate
	options []verify.Option
}

func protocolCases(t *testing.T) []checkCase {
	t.Helper()
	var cases []checkCase

	// Diffusing computation on a binary tree: convergent, nonmasking with
	// a fault-span.
	tree, err := diffusing.New(diffusing.Binary(5))
	if err != nil {
		t.Fatal(err)
	}
	d := tree.Design
	cases = append(cases, checkCase{
		name: "diffusing-binary5",
		p:    d.TolerantProgram(), s: d.S, t: d.T,
	})

	// xyz Ordered converges; Interfering livelocks under every daemon —
	// the cycle witness must be worker-invariant too.
	for _, v := range []xyz.Variant{xyz.Ordered, xyz.Interfering} {
		inst, err := xyz.New(v)
		if err != nil {
			t.Fatal(err)
		}
		d := inst.Design
		cases = append(cases, checkCase{
			name: "xyz-" + v.String(),
			p:    d.TolerantProgram(), s: d.S, t: d.T,
		})
	}

	// Token rings: K = N+2 stabilizes, K = 2 < nodes-1 livelocks.
	conv, err := tokenring.NewRing(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, checkCase{name: "ring4-k6", p: conv.P, s: conv.S})
	live, err := tokenring.NewRing(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, checkCase{name: "ring4-k2", p: live.P, s: live.S})
	return cases
}

func TestWorkersMetamorphic(t *testing.T) {
	ctx := context.Background()
	for _, tc := range protocolCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			seq, err := verify.Check(ctx, tc.p, tc.s, tc.t,
				append(tc.options, verify.WithWorkers(1))...)
			if err != nil {
				t.Fatalf("Workers=1: %v", err)
			}
			par, err := verify.Check(ctx, tc.p, tc.s, tc.t,
				append(tc.options, verify.WithWorkers(4))...)
			if err != nil {
				t.Fatalf("Workers=4: %v", err)
			}
			compareReports(t, seq, par)
		})
	}
}

// compareReports asserts that two reports of the same check are
// observationally identical apart from timing and the worker count.
func compareReports(t *testing.T, seq, par *verify.Report) {
	t.Helper()
	if seq.Classification != par.Classification {
		t.Errorf("Classification: seq %v, par %v", seq.Classification, par.Classification)
	}
	if (seq.Closure == nil) != (par.Closure == nil) {
		t.Fatalf("Closure presence differs: seq %v, par %v", seq.Closure, par.Closure)
	}
	if seq.Closure != nil && seq.Closure.Error() != par.Closure.Error() {
		t.Errorf("Closure witness: seq %q, par %q", seq.Closure.Error(), par.Closure.Error())
	}
	compareConvergence(t, "Unfair", seq.Unfair, par.Unfair)
	if (seq.Fair == nil) != (par.Fair == nil) {
		t.Fatalf("Fair presence differs: seq %v, par %v", seq.Fair, par.Fair)
	}
	if seq.Fair != nil {
		compareConvergence(t, "Fair", seq.Fair, par.Fair)
	}
	if (seq.Span == nil) != (par.Span == nil) {
		t.Fatalf("Span presence differs")
	}
	if seq.Span != nil && seq.Span.States != par.Span.States {
		t.Errorf("Span.States: seq %d, par %d", seq.Span.States, par.Span.States)
	}
}

func compareConvergence(t *testing.T, label string, seq, par *verify.ConvergenceResult) {
	t.Helper()
	if seq.Converges != par.Converges {
		t.Fatalf("%s.Converges: seq %v, par %v", label, seq.Converges, par.Converges)
	}
	if seq.WorstSteps != par.WorstSteps {
		t.Errorf("%s.WorstSteps: seq %d, par %d", label, seq.WorstSteps, par.WorstSteps)
	}
	if seq.MeanSteps != par.MeanSteps {
		t.Errorf("%s.MeanSteps: seq %v, par %v", label, seq.MeanSteps, par.MeanSteps)
	}
	if seq.StatesT != par.StatesT || seq.StatesS != par.StatesS ||
		seq.StatesOutsideS != par.StatesOutsideS {
		t.Errorf("%s state counts: seq (%d,%d,%d), par (%d,%d,%d)", label,
			seq.StatesT, seq.StatesS, seq.StatesOutsideS,
			par.StatesT, par.StatesS, par.StatesOutsideS)
	}
	// Witnesses are pinned to the minimum state index, so they are
	// reproducible state-for-state.
	if !reflect.DeepEqual(render(seq.Deadlock), render(par.Deadlock)) {
		t.Errorf("%s.Deadlock: seq %v, par %v", label, seq.Deadlock, par.Deadlock)
	}
	if len(seq.Cycle) != len(par.Cycle) {
		t.Errorf("%s.Cycle length: seq %d, par %d", label, len(seq.Cycle), len(par.Cycle))
	} else {
		for i := range seq.Cycle {
			if seq.Cycle[i].String() != par.Cycle[i].String() {
				t.Errorf("%s.Cycle[%d]: seq %s, par %s", label, i, seq.Cycle[i], par.Cycle[i])
				break
			}
		}
	}
	if (seq.Escape == nil) != (par.Escape == nil) {
		t.Fatalf("%s.Escape presence differs", label)
	}
	if seq.Escape != nil && seq.Escape.Error() != par.Escape.Error() {
		t.Errorf("%s.Escape: seq %q, par %q", label, seq.Escape.Error(), par.Escape.Error())
	}
}

func render(st *program.State) string {
	if st == nil {
		return "<nil>"
	}
	return st.String()
}

// TestWorkersMetamorphicWithFaults runs the WithFaults path (span
// computation feeding T) under both worker counts: corrupting the first
// ring counter yields a fault-span between S and true.
func TestWorkersMetamorphicWithFaults(t *testing.T) {
	inst, err := tokenring.NewRing(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Actions(inst.P.Schema, []program.VarID{inst.P.Schema.MustLookup("x[0]")})
	ctx := context.Background()
	var reports []*verify.Report
	for _, w := range []int{1, 4} {
		rep, err := verify.Check(ctx, inst.P, inst.S, nil,
			verify.WithWorkers(w), verify.WithFaults(faults...))
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if rep.Span == nil {
			t.Fatalf("Workers=%d: WithFaults produced no span", w)
		}
		reports = append(reports, rep)
	}
	compareReports(t, reports[0], reports[1])
}

// TestWorkersSweep runs one convergent and one livelocking instance over a
// range of worker counts, including counts far above the chunk count, and
// requires a single identical summary line from all of them.
func TestWorkersSweep(t *testing.T) {
	conv, err := tokenring.NewRing(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var want string
	for i, w := range []int{1, 2, 3, 7, 64} {
		rep, err := verify.Check(ctx, conv.P, conv.S, nil, verify.WithWorkers(w))
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		line := fmt.Sprintf("%s | %v", rep.Unfair.Summary(), rep.Classification)
		if i == 0 {
			want = line
			continue
		}
		if line != want {
			t.Errorf("Workers=%d: summary %q, want %q", w, line, want)
		}
	}
}
