package verify

import (
	"context"
	"strings"
	"testing"

	"nonmask/internal/program"
)

func mustSpace(t *testing.T, p *program.Program, S, T *program.Predicate) *Space {
	t.Helper()
	sp, err := NewSpaceContext(context.Background(), p, S, T, Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return sp
}

func TestConvergenceCounter(t *testing.T) {
	p, S, _ := counter(t, 5, 5)
	sp := mustSpace(t, p, S, program.True())

	res := sp.CheckConvergence()
	if !res.Converges {
		t.Fatalf("counter does not converge: %s", res.Summary())
	}
	if res.WorstSteps != 5 {
		t.Errorf("WorstSteps = %d, want 5", res.WorstSteps)
	}
	// Worst steps from x=0..4 are 5,4,3,2,1; mean = 3.
	if res.MeanSteps != 3 {
		t.Errorf("MeanSteps = %v, want 3", res.MeanSteps)
	}
	if res.StatesOutsideS != 5 {
		t.Errorf("StatesOutsideS = %d, want 5", res.StatesOutsideS)
	}
	if !strings.Contains(res.Summary(), "converges under arbitrary daemon") {
		t.Errorf("Summary = %q", res.Summary())
	}

	fair := sp.CheckFairConvergence()
	if !fair.Converges {
		t.Errorf("counter does not fairly converge: %s", fair.Summary())
	}
}

func TestConvergenceDeadlock(t *testing.T) {
	// Only action: x=2 -> x:=1. State x=0 is terminal outside S={x=1}.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 2))
	p := program.New("deadlock", s)
	p.Add(program.NewAction("fix", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 2 },
		func(st *program.State) { st.Set(x, 1) }))
	S := program.NewPredicate("x=1", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 1 })
	sp := mustSpace(t, p, S, program.True())

	res := sp.CheckConvergence()
	if res.Converges {
		t.Fatal("deadlocked program reported convergent")
	}
	if res.Deadlock == nil || res.Deadlock.Get(x) != 0 {
		t.Errorf("Deadlock = %v, want state x=0", res.Deadlock)
	}
	if !strings.Contains(res.Summary(), "deadlock") {
		t.Errorf("Summary = %q", res.Summary())
	}

	fair := sp.CheckFairConvergence()
	if fair.Converges || fair.Deadlock == nil {
		t.Error("fair check missed the deadlock")
	}
}

// toggleProgram is the canonical fairness separator: with y false, action
// "flip" toggles x forever while action "done" sets y. An unfair daemon can
// run flip exclusively; a weakly fair daemon must eventually run done,
// since done is continuously enabled.
func toggleProgram(t *testing.T) (*program.Program, *program.Predicate) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.Bool())
	y := s.MustDeclare("y", program.Bool())
	p := program.New("toggle", s)
	p.Add(
		program.NewAction("flip", program.Closure,
			[]program.VarID{x, y}, []program.VarID{x},
			func(st *program.State) bool { return !st.Bool(y) },
			func(st *program.State) { st.SetBool(x, !st.Bool(x)) }),
		program.NewAction("done", program.Convergence,
			[]program.VarID{y}, []program.VarID{y},
			func(st *program.State) bool { return !st.Bool(y) },
			func(st *program.State) { st.SetBool(y, true) }),
	)
	S := program.NewPredicate("y", []program.VarID{y},
		func(st *program.State) bool { return st.Bool(y) })
	return p, S
}

func TestConvergenceFairnessSeparation(t *testing.T) {
	// The paper's Section 8 remark: fairness is often unnecessary — but not
	// always. This program converges only under the fair daemon.
	p, S := toggleProgram(t)
	sp := mustSpace(t, p, S, program.True())

	unfair := sp.CheckConvergence()
	if unfair.Converges {
		t.Fatal("toggle program converges under arbitrary daemon; expected livelock")
	}
	if len(unfair.Cycle) == 0 {
		t.Errorf("no cycle witness: %s", unfair.Summary())
	}

	fair := sp.CheckFairConvergence()
	if !fair.Converges {
		t.Fatalf("toggle program does not fairly converge: %s", fair.Summary())
	}
}

func TestConvergenceSelfLoopStutter(t *testing.T) {
	// A no-op action enabled outside S is an unfair livelock but harmless
	// under weak fairness (the productive action is continuously enabled).
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 1))
	p := program.New("stutter", s)
	p.Add(
		program.NewAction("noop", program.Closure,
			[]program.VarID{x}, nil,
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) {}),
		program.NewAction("go", program.Convergence,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) { st.Set(x, 1) }),
	)
	S := program.NewPredicate("x=1", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 1 })
	sp := mustSpace(t, p, S, program.True())

	if res := sp.CheckConvergence(); res.Converges {
		t.Error("stutter program converges under arbitrary daemon")
	}
	if res := sp.CheckFairConvergence(); !res.Converges {
		t.Errorf("stutter program does not fairly converge: %s", res.Summary())
	}
}

func TestConvergenceFairLivelock(t *testing.T) {
	// Two states 0 <-> 1 with S = {2} reachable only via x=1 -> 2, but the
	// escaping action is NOT continuously enabled along the 0<->1 loop, so
	// the loop is weakly fair: no convergence under either daemon.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 2))
	p := program.New("fairloop", s)
	p.Add(
		program.NewAction("up", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) { st.Set(x, 1) }),
		program.NewAction("down", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 1 },
			func(st *program.State) { st.Set(x, 0) }),
		program.NewAction("escape", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 1 },
			func(st *program.State) { st.Set(x, 2) }),
	)
	S := program.NewPredicate("x=2", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 2 })
	sp := mustSpace(t, p, S, program.True())

	if res := sp.CheckConvergence(); res.Converges {
		t.Error("fairloop converges under arbitrary daemon")
	}
	res := sp.CheckFairConvergence()
	if res.Converges {
		t.Error("fairloop fairly converges; the 0<->1 loop is weakly fair")
	}
	if len(res.Cycle) != 2 {
		t.Errorf("fair cycle witness has %d states, want 2", len(res.Cycle))
	}
	if !strings.Contains(res.Summary(), "weakly fair daemon") {
		t.Errorf("Summary = %q", res.Summary())
	}
}

func TestConvergenceEscapeFromT(t *testing.T) {
	// T = x <= 1, but action at x=1 jumps to x=2: closure failure surfaces
	// as an Escape during convergence checking.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 2))
	p := program.New("escape", s)
	p.Add(program.NewAction("jump", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 1 },
		func(st *program.State) { st.Set(x, 2) }))
	S := program.NewPredicate("x=0", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 0 })
	T := program.NewPredicate("x<=1", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 1 })
	sp := mustSpace(t, p, S, T)

	res := sp.CheckConvergence()
	if res.Converges || res.Escape == nil {
		t.Errorf("escape not detected: %+v", res)
	}
	fres := sp.CheckFairConvergence()
	if fres.Converges || fres.Escape == nil {
		t.Errorf("fair escape not detected: %+v", fres)
	}
}

func TestConvergenceRestrictedToT(t *testing.T) {
	// Outside T the program misbehaves, but convergence is only required
	// from T: T = x<=3 with S = x=0 and a decrement action; states above 3
	// would deadlock but are not in T.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 9))
	p := program.New("dec", s)
	p.Add(program.NewAction("dec", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) >= 1 && st.Get(x) <= 3 },
		func(st *program.State) { st.Set(x, st.Get(x)-1) }))
	S := program.NewPredicate("x=0", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 0 })
	T := program.NewPredicate("x<=3", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 3 })
	sp := mustSpace(t, p, S, T)

	res := sp.CheckConvergence()
	if !res.Converges {
		t.Fatalf("restricted convergence failed: %s", res.Summary())
	}
	if res.WorstSteps != 3 {
		t.Errorf("WorstSteps = %d, want 3", res.WorstSteps)
	}
}

func TestWorstDistances(t *testing.T) {
	p, S, _ := counter(t, 5, 5)
	sp := mustSpace(t, p, S, program.True())
	dist, ok := sp.WorstDistances()
	if !ok {
		t.Fatal("WorstDistances failed on convergent program")
	}
	for i := int64(0); i <= 5; i++ {
		want := int32(5 - i)
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestWorstDistancesFailsOnLivelock(t *testing.T) {
	p, S := toggleProgram(t)
	sp := mustSpace(t, p, S, program.True())
	if _, ok := sp.WorstDistances(); ok {
		t.Error("WorstDistances succeeded on non-convergent program")
	}
}

func TestWorstDistancesBranching(t *testing.T) {
	// Two paths to S: the worst-case metric takes the max over daemon
	// choices, not the min. From x=0: "slow" goes 0->1->2->3(S), "fast"
	// goes 0->3 directly; worst is 3 steps.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 3))
	p := program.New("branch", s)
	p.Add(
		program.NewAction("slow", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) < 3 },
			func(st *program.State) { st.Set(x, st.Get(x)+1) }),
		program.NewAction("fast", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) { st.Set(x, 3) }),
	)
	S := program.NewPredicate("x=3", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 3 })
	sp := mustSpace(t, p, S, program.True())
	res := sp.CheckConvergence()
	if !res.Converges || res.WorstSteps != 3 {
		t.Errorf("WorstSteps = %d (converges=%v), want 3", res.WorstSteps, res.Converges)
	}
	dist, _ := sp.WorstDistances()
	if dist[0] != 3 {
		t.Errorf("dist[0] = %d, want 3", dist[0])
	}
}
