package verify

import (
	"context"
	"testing"

	"nonmask/internal/program"
)

// cyclic builds a modular counter: x := x+1 mod n, always enabled.
func cyclic(t *testing.T, n int32) (*program.Program, program.VarID) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, n-1))
	p := program.New("cyclic", s)
	p.Add(program.NewAction("tick", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return true },
		func(st *program.State) { st.Set(x, (st.Get(x)+1)%n) }))
	return p, x
}

func atPred(x program.VarID, v int32) *program.Predicate {
	return program.NewPredicate("x=v", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == v })
}

func TestLeadsToOnCycle(t *testing.T) {
	p, x := cyclic(t, 5)
	sp, err := NewSpaceContext(context.Background(), p, program.False(), program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// On a deterministic cycle, every state leads to every other state.
	res := sp.LeadsTo(atPred(x, 1), atPred(x, 4), false)
	if !res.Holds {
		t.Errorf("x=1 does not lead to x=4 on the cycle: %+v", res)
	}
	res = sp.LeadsTo(atPred(x, 4), atPred(x, 1), false)
	if !res.Holds {
		t.Errorf("x=4 does not lead to x=1 (wrapping): %+v", res)
	}
}

func TestLeadsToFailsOnBranch(t *testing.T) {
	// From x=0 the daemon may go to 1 or 2; 1 loops on itself, 2 is the
	// target. x=0 leads to x=2 fails under both daemons (the 1-loop is
	// fair: its only action is the self-loop).
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 2))
	p := program.New("branch", s)
	p.Add(
		program.NewAction("to1", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) { st.Set(x, 1) }),
		program.NewAction("to2", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) { st.Set(x, 2) }),
		program.NewAction("spin", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 1 },
			func(st *program.State) {}),
	)
	sp, err := NewSpaceContext(context.Background(), p, program.False(), program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.LeadsTo(atPred(x, 0), atPred(x, 2), false)
	if res.Holds {
		t.Error("x=0 leads to x=2 despite the x=1 trap")
	}
	if res.Stuck == nil {
		t.Error("no witness state")
	}
	fres := sp.LeadsTo(atPred(x, 0), atPred(x, 2), true)
	if fres.Holds {
		t.Error("fair leads-to holds despite the fair x=1 self-loop")
	}
}

func TestLeadsToFairVsUnfair(t *testing.T) {
	// From x=0, "stay" stutters and "go" moves to 1: unfair fails (stutter
	// forever), fair holds (go continuously enabled).
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 1))
	p := program.New("stutter", s)
	p.Add(
		program.NewAction("stay", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) {}),
		program.NewAction("go", program.Closure,
			[]program.VarID{x}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == 0 },
			func(st *program.State) { st.Set(x, 1) }),
	)
	sp, err := NewSpaceContext(context.Background(), p, program.False(), program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if sp.LeadsTo(atPred(x, 0), atPred(x, 1), false).Holds {
		t.Error("unfair leads-to holds despite the stutter loop")
	}
	if !sp.LeadsTo(atPred(x, 0), atPred(x, 1), true).Holds {
		t.Error("fair leads-to fails despite go being continuously enabled")
	}
}

func TestLeadsToDeadlockWitness(t *testing.T) {
	// x=0 -> x=1 (terminal, not the target): leads-to fails by deadlock.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 2))
	p := program.New("dead", s)
	p.Add(program.NewAction("to1", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 0 },
		func(st *program.State) { st.Set(x, 1) }))
	sp, err := NewSpaceContext(context.Background(), p, program.False(), program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.LeadsTo(atPred(x, 0), atPred(x, 2), false)
	if res.Holds {
		t.Error("leads-to holds despite the x=1 dead end")
	}
	if res.Stuck == nil || res.Stuck.Get(x) != 1 {
		t.Errorf("Stuck = %v, want x=1", res.Stuck)
	}
}

func TestLeadsToVacuous(t *testing.T) {
	p, x := cyclic(t, 3)
	sp, err := NewSpaceContext(context.Background(), p, program.False(), program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// No p-states: vacuously true.
	res := sp.LeadsTo(program.False(), atPred(x, 1), false)
	if !res.Holds {
		t.Error("vacuous leads-to fails")
	}
	// p implies q: immediately true.
	res = sp.LeadsTo(atPred(x, 1), atPred(x, 1), false)
	if !res.Holds {
		t.Error("p=q leads-to fails")
	}
}

func TestLeadsToRespectsRegion(t *testing.T) {
	// Region T = x<=1. Within it, x=0 -> x=1 exits the region at x=1's
	// action... build: 0->1->2 with T = x<=1: the obligation from x=0
	// ends when the run leaves the region (x=2), so leads-to x=9... use
	// q = x=1: holds. q = never: also holds (every run exits the region).
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 2))
	p := program.New("exit", s)
	p.Add(program.NewAction("inc", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < 2 },
		func(st *program.State) { st.Set(x, st.Get(x)+1) }))
	T := program.NewPredicate("x<=1", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 1 })
	S := program.NewPredicate("x=0", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 0 })
	sp, err := NewSpaceContext(context.Background(), p, S, T, Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	res := sp.LeadsTo(atPred(x, 0), program.False(), false)
	if !res.Holds {
		t.Error("leads-to should hold vacuously when every run exits the region")
	}
}
