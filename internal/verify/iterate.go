package verify

import (
	"nonmask/internal/obs"
	"nonmask/internal/program"
)

// SuccCursor iterates the enabled successors of individual states together
// with the acting action — the schedule-constrained view of the transition
// graph that replay and adversarial search need (the bulk passes only ever
// consume anonymous successor indices). A cursor owns its scratch states,
// so one cursor amortizes decoding allocations across many calls; cursors
// are not safe for concurrent use, give each goroutine its own.
type SuccCursor struct {
	sp      *Space
	st, tmp *program.State
}

// NewSuccCursor returns a cursor over this space's transition graph.
func (sp *Space) NewSuccCursor() *SuccCursor {
	return &SuccCursor{sp: sp, st: sp.P.Schema.NewState(), tmp: sp.P.Schema.NewState()}
}

// ForEach invokes fn(a, j) for every enabled action a of state i and the
// successor index j it produces, in action-declaration order (the order
// the CSR stores edges in). fn returning false stops the iteration. When
// the CSR index is present the successor indices are read from it and the
// guards are rescanned only to recover action identity — the same zip the
// convergence passes use; without the index the successors are recomputed
// through the scratch pair.
func (c *SuccCursor) ForEach(i int64, fn func(a *program.Action, j int64) bool) {
	sp := c.sp
	sp.stateInto(i, c.st)
	if sp.idx != nil {
		row := sp.idx.out(i)
		rank := 0
		for _, a := range sp.P.Actions {
			if !a.Guard(c.st) {
				continue
			}
			j := int64(row[rank])
			rank++
			if !fn(a, j) {
				return
			}
		}
		return
	}
	for _, a := range sp.P.Actions {
		if !a.Guard(c.st) {
			continue
		}
		a.ApplyInto(c.st, c.tmp)
		if !fn(a, sp.indexOf(c.tmp)) {
			return
		}
	}
}

// ForEachSuccessor is the convenience form of SuccCursor.ForEach for
// one-off calls; loops should hold a cursor instead.
func (sp *Space) ForEachSuccessor(i int64, fn func(a *program.Action, j int64) bool) {
	sp.NewSuccCursor().ForEach(i, fn)
}

// Tracer exposes the tracer the space was built with, so follow-up passes
// run by other packages (e.g. the saboteur search) can emit spans into the
// same stream — inside Check that stream is the report's collector teed
// with the caller's tracer, so such spans surface in Report.PassStats().
func (sp *Space) Tracer() obs.Tracer { return sp.opts.Tracer }

// Workers exposes the resolved worker count of the space's options, for
// follow-up passes that shard their own scans.
func (sp *Space) Workers() int { return sp.workers() }
