package verify

import (
	"context"
	"fmt"

	"nonmask/internal/program"
)

// PreserveResult reports whether an action preserves a predicate, with a
// counterexample when it does not.
type PreserveResult struct {
	Preserves bool
	// State is a state where the action is enabled, the predicate (and all
	// Given predicates) hold, and executing the action falsifies the
	// predicate. Nil when Preserves.
	State *program.State
	// Next is the violating successor state. Nil when Preserves.
	Next *program.State
}

// CheckPreservesContext decides, by exhaustive enumeration, whether
// action a preserves predicate c (paper Section 2: "an action of p
// preserves a state predicate R iff starting from any state where the
// action is enabled and R holds, executing the action yields a state
// where R holds").
//
// The optional given predicates restrict attention to states where they all
// hold — the conditional preservation used by Theorem 3 ("preserves each
// constraint in that partition whenever all constraints in lower numbered
// partitions hold"). The state scan is sharded across opts.Workers
// goroutines and reports the counterexample at the lowest state index
// regardless of worker count.
func CheckPreservesContext(ctx context.Context, schema *program.Schema, a *program.Action,
	c *program.Predicate, given []*program.Predicate, opts Options) (*PreserveResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	count, ok := schema.StateCount()
	if !ok || count > opts.maxStates() {
		return nil, fmt.Errorf("verify: state space too large for exhaustive preservation check (%d states)", count)
	}
	workers := opts.workers()
	scr := newSchemaPairs(schema, workers)
	w := newWitness()
	span := startPass(opts, PassPreserve, count)
	err := parallelRange(ctx, workers, count, opts.Progress, func(worker int, lo, hi int64) {
		st, tmp := scr[worker].st, scr[worker].tmp
	states:
		for i := lo; i < hi; i++ {
			schema.StateInto(i, st)
			if !a.Guard(st) || !c.Holds(st) {
				continue
			}
			for _, g := range given {
				if !g.Holds(st) {
					continue states
				}
			}
			a.ApplyInto(st, tmp)
			if !c.Holds(tmp) {
				w.offer(i, 0)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	span.end(count)
	if !w.found() {
		return &PreserveResult{Preserves: true}, nil
	}
	st := schema.StateAt(w.state)
	return &PreserveResult{State: st, Next: a.Apply(st)}, nil
}

// newSchemaPairs allocates per-worker scratch state pairs for a schema that
// has no enclosing Space.
func newSchemaPairs(schema *program.Schema, workers int) []statePair {
	scr := make([]statePair, workers)
	for i := range scr {
		scr[i] = statePair{st: schema.NewState(), tmp: schema.NewState()}
	}
	return scr
}

// CheckPreservesProjectedContext decides preservation by enumerating only
// the variables in the action's footprint and the predicate's declared
// support; all other variables are pinned at their domain minimum. It is
// equivalent to CheckPreservesContext when footprints and supports are
// honest (see program.AuditAction / program.AuditPredicate) and no given
// predicates are supplied, while being exponentially cheaper for large
// programs whose actions and constraints are local — exactly the
// structure the paper's method exploits ("program actions can access and
// update only a limited part of the program state").
//
// Given predicates are also projected: their supports join the enumerated
// variable set.
func CheckPreservesProjectedContext(ctx context.Context, schema *program.Schema, a *program.Action,
	c *program.Predicate, given []*program.Predicate, opts Options) (*PreserveResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	vars := a.Footprint()
	vars = append(vars, c.Vars...)
	for _, g := range given {
		vars = append(vars, g.Vars...)
	}
	vars = program.SortVarIDs(vars)
	count, err := projectedCount(schema, vars, opts)
	if err != nil {
		return nil, err
	}

	workers := opts.workers()
	scr := make([]*program.State, workers)
	for i := range scr {
		scr[i] = schema.NewState() // non-projected variables stay at Dom.Min
	}
	w := newWitness()
	err = parallelRange(ctx, workers, count, opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
	states:
		for i := lo; i < hi; i++ {
			projectInto(schema, vars, i, st)
			if !a.Guard(st) || !c.Holds(st) {
				continue
			}
			for _, g := range given {
				if !g.Holds(st) {
					continue states
				}
			}
			if !c.Holds(a.Apply(st)) {
				w.offer(i, 0)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if !w.found() {
		return &PreserveResult{Preserves: true}, nil
	}
	st := schema.NewState()
	projectInto(schema, vars, w.state, st)
	return &PreserveResult{State: st, Next: a.Apply(st)}, nil
}

// projectedCount sizes the projected space of the given variables against
// the options' state cap.
func projectedCount(schema *program.Schema, vars []program.VarID, opts Options) (int64, error) {
	count := int64(1)
	for _, v := range vars {
		sz := schema.Spec(v).Dom.Size()
		if count > opts.maxStates()/sz {
			return 0, fmt.Errorf("verify: projected space too large (%d vars)", len(vars))
		}
		count *= sz
	}
	return count, nil
}

// projectInto decodes mixed-radix index i over just the projected
// variables into st, leaving all other variables untouched.
func projectInto(schema *program.Schema, vars []program.VarID, i int64, st *program.State) {
	rem := i
	for k := len(vars) - 1; k >= 0; k-- {
		dom := schema.Spec(vars[k]).Dom
		st.Set(vars[k], dom.Min+int32(rem%dom.Size()))
		rem /= dom.Size()
	}
}

// Strategy selects how preservation facts are decided.
type Strategy int

// Strategies. Exhaustive enumerates the full state space (exact, small
// instances); Projected enumerates only footprints and supports (exact
// whenever footprints are honest; scales to large instances).
const (
	Exhaustive Strategy = iota + 1
	Projected
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case Projected:
		return "projected"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Preserves dispatches on the strategy.
func Preserves(strategy Strategy, schema *program.Schema, a *program.Action,
	c *program.Predicate, given []*program.Predicate, opts Options) (*PreserveResult, error) {
	return PreservesContext(context.Background(), strategy, schema, a, c, given, opts)
}

// PreservesContext dispatches on the strategy with cancellation.
func PreservesContext(ctx context.Context, strategy Strategy, schema *program.Schema,
	a *program.Action, c *program.Predicate, given []*program.Predicate, opts Options) (*PreserveResult, error) {
	switch strategy {
	case Exhaustive:
		return CheckPreservesContext(ctx, schema, a, c, given, opts)
	case Projected:
		return CheckPreservesProjectedContext(ctx, schema, a, c, given, opts)
	default:
		return nil, fmt.Errorf("verify: unknown strategy %v", strategy)
	}
}

// GuardImpliesNot checks the convergence-action well-formedness condition
// of Section 3: the action's guard must imply ¬c, i.e. the action is
// enabled only where its constraint is violated ("since convergence actions
// are enabled only when ¬S holds, they trivially preserve S"). The check
// enumerates the projected space of the guard's reads and the constraint's
// support. It returns a state where guard ∧ c both hold, or nil.
func GuardImpliesNot(schema *program.Schema, a *program.Action, c *program.Predicate,
	opts Options) (*program.State, error) {
	return GuardImpliesNotContext(context.Background(), schema, a, c, opts)
}

// GuardImpliesNotContext is GuardImpliesNot with cancellation and a sharded
// projected scan; the returned state is the lowest-index counterexample.
func GuardImpliesNotContext(ctx context.Context, schema *program.Schema, a *program.Action,
	c *program.Predicate, opts Options) (*program.State, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	vars := append(append([]program.VarID{}, a.Reads...), c.Vars...)
	vars = program.SortVarIDs(vars)
	count, err := projectedCount(schema, vars, opts)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	scr := make([]*program.State, workers)
	for i := range scr {
		scr[i] = schema.NewState()
	}
	w := newWitness()
	err = parallelRange(ctx, workers, count, opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		for i := lo; i < hi; i++ {
			projectInto(schema, vars, i, st)
			if a.Guard(st) && c.Holds(st) {
				w.offer(i, 0)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if !w.found() {
		return nil, nil
	}
	st := schema.NewState()
	projectInto(schema, vars, w.state, st)
	return st, nil
}
