package verify

import (
	"fmt"

	"nonmask/internal/program"
)

// PreserveResult reports whether an action preserves a predicate, with a
// counterexample when it does not.
type PreserveResult struct {
	Preserves bool
	// State is a state where the action is enabled, the predicate (and all
	// Given predicates) hold, and executing the action falsifies the
	// predicate. Nil when Preserves.
	State *program.State
	// Next is the violating successor state. Nil when Preserves.
	Next *program.State
}

// CheckPreserves decides, by exhaustive enumeration, whether action a
// preserves predicate c (paper Section 2: "an action of p preserves a state
// predicate R iff starting from any state where the action is enabled and R
// holds, executing the action yields a state where R holds").
//
// The optional given predicates restrict attention to states where they all
// hold — the conditional preservation used by Theorem 3 ("preserves each
// constraint in that partition whenever all constraints in lower numbered
// partitions hold").
func CheckPreserves(schema *program.Schema, a *program.Action, c *program.Predicate,
	given []*program.Predicate, opts Options) (*PreserveResult, error) {
	count, ok := schema.StateCount()
	if !ok || count > opts.maxStates() {
		return nil, fmt.Errorf("verify: state space too large for exhaustive preservation check (%d states)", count)
	}
states:
	for i := int64(0); i < count; i++ {
		st := schema.StateAt(i)
		if !a.Guard(st) || !c.Holds(st) {
			continue
		}
		for _, g := range given {
			if !g.Holds(st) {
				continue states
			}
		}
		next := a.Apply(st)
		if !c.Holds(next) {
			return &PreserveResult{State: st, Next: next}, nil
		}
	}
	return &PreserveResult{Preserves: true}, nil
}

// CheckPreservesProjected decides preservation by enumerating only the
// variables in the action's footprint and the predicate's declared support;
// all other variables are pinned at their domain minimum. It is equivalent
// to CheckPreserves when footprints and supports are honest (see
// program.AuditAction / program.AuditPredicate) and no given predicates are
// supplied, while being exponentially cheaper for large programs whose
// actions and constraints are local — exactly the structure the paper's
// method exploits ("program actions can access and update only a limited
// part of the program state").
//
// Given predicates are also projected: their supports join the enumerated
// variable set.
func CheckPreservesProjected(schema *program.Schema, a *program.Action, c *program.Predicate,
	given []*program.Predicate, opts Options) (*PreserveResult, error) {
	vars := a.Footprint()
	vars = append(vars, c.Vars...)
	for _, g := range given {
		vars = append(vars, g.Vars...)
	}
	vars = program.SortVarIDs(vars)

	// Count the projected space.
	count := int64(1)
	for _, v := range vars {
		sz := schema.Spec(v).Dom.Size()
		if count > opts.maxStates()/sz {
			return nil, fmt.Errorf("verify: projected space too large (%d vars)", len(vars))
		}
		count *= sz
	}

	st := schema.NewState()
states:
	for i := int64(0); i < count; i++ {
		// Decode mixed-radix index i over just the projected variables.
		rem := i
		for k := len(vars) - 1; k >= 0; k-- {
			dom := schema.Spec(vars[k]).Dom
			st.Set(vars[k], dom.Min+int32(rem%dom.Size()))
			rem /= dom.Size()
		}
		if !a.Guard(st) || !c.Holds(st) {
			continue
		}
		for _, g := range given {
			if !g.Holds(st) {
				continue states
			}
		}
		next := a.Apply(st)
		if !c.Holds(next) {
			return &PreserveResult{State: st.Clone(), Next: next}, nil
		}
	}
	return &PreserveResult{Preserves: true}, nil
}

// Strategy selects how preservation facts are decided.
type Strategy int

// Strategies. Exhaustive enumerates the full state space (exact, small
// instances); Projected enumerates only footprints and supports (exact
// whenever footprints are honest; scales to large instances).
const (
	Exhaustive Strategy = iota + 1
	Projected
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Exhaustive:
		return "exhaustive"
	case Projected:
		return "projected"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Preserves dispatches on the strategy.
func Preserves(strategy Strategy, schema *program.Schema, a *program.Action,
	c *program.Predicate, given []*program.Predicate, opts Options) (*PreserveResult, error) {
	switch strategy {
	case Exhaustive:
		return CheckPreserves(schema, a, c, given, opts)
	case Projected:
		return CheckPreservesProjected(schema, a, c, given, opts)
	default:
		return nil, fmt.Errorf("verify: unknown strategy %v", strategy)
	}
}

// GuardImpliesNot checks the convergence-action well-formedness condition
// of Section 3: the action's guard must imply ¬c, i.e. the action is
// enabled only where its constraint is violated ("since convergence actions
// are enabled only when ¬S holds, they trivially preserve S"). The check
// enumerates the projected space of the guard's reads and the constraint's
// support. It returns a state where guard ∧ c both hold, or nil.
func GuardImpliesNot(schema *program.Schema, a *program.Action, c *program.Predicate,
	opts Options) (*program.State, error) {
	vars := append(append([]program.VarID{}, a.Reads...), c.Vars...)
	vars = program.SortVarIDs(vars)
	count := int64(1)
	for _, v := range vars {
		sz := schema.Spec(v).Dom.Size()
		if count > opts.maxStates()/sz {
			return nil, fmt.Errorf("verify: projected space too large (%d vars)", len(vars))
		}
		count *= sz
	}
	st := schema.NewState()
	for i := int64(0); i < count; i++ {
		rem := i
		for k := len(vars) - 1; k >= 0; k-- {
			dom := schema.Spec(vars[k]).Dom
			st.Set(vars[k], dom.Min+int32(rem%dom.Size()))
			rem /= dom.Size()
		}
		if a.Guard(st) && c.Holds(st) {
			return st.Clone(), nil
		}
	}
	return nil, nil
}
