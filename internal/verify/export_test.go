package verify

// SetSuccIndexBudget overrides the successor-index memory budget for the
// duration of a test, returning a restore function. A tiny budget forces
// every pass through the on-the-fly fallback, which is how the metamorphic
// and benchmark suites pin CSR-vs-fallback agreement.
func SetSuccIndexBudget(b int64) (restore func()) {
	old := succIndexBudget
	succIndexBudget = b
	return func() { succIndexBudget = old }
}

// HasSuccIndex reports whether the space materialized its CSR successor
// index (false means the passes run on the on-the-fly fallback).
func (sp *Space) HasSuccIndex() bool { return sp.idx != nil }

// SuccIndexStats returns the enabled-edge count and byte size of the
// forward CSR index, or zeros when it was not built.
func (sp *Space) SuccIndexStats() (edges, bytes int64) {
	if sp.idx == nil {
		return 0, 0
	}
	return sp.idx.numEdges(), sp.idx.fwdBytes()
}
