package verify

import (
	"context"

	"nonmask/internal/program"
)

// SetSuccIndexBudget overrides the successor-index memory budget for the
// duration of a test, returning a restore function. A tiny budget forces
// every pass through the on-the-fly fallback, which is how the metamorphic
// and benchmark suites pin CSR-vs-fallback agreement.
func SetSuccIndexBudget(b int64) (restore func()) {
	old := succIndexBudget
	succIndexBudget = b
	return func() { succIndexBudget = old }
}

// HasSuccIndex reports whether the space materialized its CSR successor
// index (false means the passes run on the on-the-fly fallback).
func (sp *Space) HasSuccIndex() bool { return sp.idx != nil }

// SuccIndexStats returns the enabled-edge count and byte size of the
// forward CSR index, or zeros when it was not built.
func (sp *Space) SuccIndexStats() (edges, bytes int64) {
	if sp.idx == nil {
		return 0, 0
	}
	return sp.idx.numEdges(), sp.idx.fwdBytes()
}

// SetStateFingerprint substitutes the quotient fingerprint hash for the
// duration of a test, returning a restore function. A degenerate hash
// forces 64-bit collisions between distinct representatives, exercising
// the FingerprintCollision refusal path.
func SetStateFingerprint(fn func(*program.State) uint64) (restore func()) {
	old := stateFingerprint
	stateFingerprint = fn
	return func() { stateFingerprint = old }
}

// SetSpillNamedFallback forces the spill arena's named-file fallback
// (bypassing O_TMPFILE), so crash-sweep tests can observe leftover files
// on disk. Returns a restore function.
func SetSpillNamedFallback(on bool) (restore func()) {
	old := spillNoOTmpfile
	spillNoOTmpfile = on
	return func() { spillNoOTmpfile = old }
}

// SetPredBuilder pins the reverse-CSR builder: 0 density-adaptive
// (default), 1 counting sort, 2 atomic scatter. The benchmark pair and
// the byte-identity test use it. Returns a restore function.
func SetPredBuilder(b int) (restore func()) {
	old := predBuilder
	predBuilder = b
	return func() { predBuilder = old }
}

// ReverseIndex exposes the (possibly lazily built) reverse CSR for
// byte-identity assertions across builders.
func (sp *Space) ReverseIndex() (revOff []uint32, revPred []int32, err error) {
	return sp.predIndex(context.Background())
}

// SweepSpillDir runs the crash-leftover sweep on dir, for tests.
func SweepSpillDir(dir string) { sweepSpillLeftovers(dir) }
