package verify

import (
	"context"
	"sync"
	"sync/atomic"

	"nonmask/internal/obs"
)

// chunkStates is the work-stealing grain of the sharded passes. It is a
// multiple of 64 so that two workers filling the same bitset from
// different chunks never write the same word (see bitset's concurrency
// contract).
const chunkStates = 1 << 14

// parallelRange runs fn over [0, n) split into chunkStates-sized chunks,
// handed out to `workers` goroutines through an atomic cursor. fn receives
// its worker id (0..workers-1, for indexing per-worker scratch) and a
// half-open index range. Cancellation is polled between chunks: the
// returned error is ctx.Err() when the context fires mid-pass.
//
// With workers == 1 the range runs on the calling goroutine in ascending
// order — the sequential mode of every pass is the one-worker instance of
// the parallel one. Witness-producing passes always scan the whole range
// and keep the minimum-index witness, so verdicts and witnesses cannot
// depend on the worker count.
//
// prog, when non-nil, is bumped by the chunk size after each chunk — the
// single choke point that gives every sharded pass live progress for one
// nil-check and one atomic add per ~16k states.
func parallelRange(ctx context.Context, workers int, n int64, prog *obs.Progress, fn func(worker int, lo, hi int64)) error {
	if n <= 0 {
		return ctx.Err()
	}
	nChunks := (n + chunkStates - 1) / chunkStates
	if workers > int(nChunks) {
		workers = int(nChunks)
	}
	if workers <= 1 {
		for c := int64(0); c < nChunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			lo := c * chunkStates
			hi := min(lo+chunkStates, n)
			fn(0, lo, hi)
			prog.Add(hi - lo)
		}
		return ctx.Err()
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				c := cursor.Add(1) - 1
				if c >= nChunks {
					return
				}
				lo := c * chunkStates
				hi := min(lo+chunkStates, n)
				fn(worker, lo, hi)
				prog.Add(hi - lo)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// parallelItems runs fn over n coarse-grained items (one atomic-cursor
// claim per item) — the sibling of parallelRange for work whose natural
// grain is a handful of large pieces (the reverse-CSR target partitions)
// rather than millions of states. With workers <= 1 the items run on the
// calling goroutine in ascending order. Cancellation is polled between
// items.
func parallelItems(ctx context.Context, workers, n int, fn func(item int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var (
		cursor atomic.Int64
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := cursor.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// witness tracks the lowest-index counterexample found by a sharded pass.
// Workers race to publish; keeping the minimum makes every pass's reported
// witness deterministic — independent of worker count and scheduling.
type witness struct {
	mu    sync.Mutex
	state int64 // state index, -1 = none
	extra int64 // pass-specific payload (e.g. action index)
}

func newWitness() *witness { return &witness{state: -1} }

// offer records (state, extra) if it improves on the current minimum.
func (w *witness) offer(state, extra int64) {
	w.mu.Lock()
	if w.state < 0 || state < w.state {
		w.state, w.extra = state, extra
	}
	w.mu.Unlock()
}

// found reports whether any witness was offered.
func (w *witness) found() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state >= 0
}
