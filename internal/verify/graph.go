package verify

import (
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"nonmask/internal/program"
)

// succIndexBudget caps the memory spent on each precomputed transition
// index (the forward CSR, and separately the reverse CSR mirroring it).
// Unlike the old dense per-action table, the budget is charged against the
// *actual* enabled-edge count E discovered by the counting sweep:
//
//	forward bytes = 4·(Count+1) + 4·E   (uint32 offsets + int32 targets)
//
// Above the budget (or above int32 state indices) the passes fall back to
// recomputing successors on the fly — unless the space runs on the spill
// tier, where the arrays live in mmap'd segment files and the budget is
// the disk's. A var rather than a const so tests can force the fallback
// (see export_test.go).
var succIndexBudget = int64(1) << 31 // 2 GiB per index

// predScatterDensity is the guard density (E / (Count·nA)) above which
// the in-RAM reverse-CSR build switches from the partitioned counting
// sort to the atomic-scatter build. Dense instances (the printed mod-K
// ring measures 77%) lose ~10% single-core to the counting sort's extra
// packed-scratch pass; sparse ones favour the cache behaviour of the
// partition sort. Both builders produce byte-identical (source-ascending)
// output. A var so the benchmark pair can pin each builder.
var predScatterDensity = 0.5

// predBuilder forces one reverse-CSR builder, for tests and benchmarks:
// 0 = density-adaptive (default), 1 = counting sort, 2 = atomic scatter.
var predBuilder = 0

// succIndex is the CSR transition graph of a Space, covering only enabled
// transitions: state i's successors are edges[offsets[i]:offsets[i+1]], in
// ascending action order. The entry payload is the 4-byte successor index
// alone — the acting action is implicit as the edge's rank among i's
// enabled guards and is recovered by actionAt only on witness paths, so
// edge storage stays at 4 bytes even for near-dense programs.
//
// The reverse CSR (predecessors, multi-edges kept) is built lazily by
// predIndex on first use and cached here; derived stage spaces share the
// struct by pointer, so one Check builds it at most once.
//
// On the spill tier both CSRs view mmap'd segment files (sealed read-only
// after their fill sweeps) instead of heap slices; the owning Space's
// arena unmaps them at Close.
type succIndex struct {
	offsets []uint32 // len Count+1
	edges   []int32  // successor state per enabled (state, action)

	revMu   sync.Mutex
	revOff  []uint32 // len Count+1; nil until built
	revPred []int32  // predecessor state per enabled edge, source-ascending
}

// out returns the successor indices of state i, one per enabled action in
// action order.
func (g *succIndex) out(i int64) []int32 {
	return g.edges[g.offsets[i]:g.offsets[i+1]]
}

// numEdges returns E, the number of enabled transitions in the space.
func (g *succIndex) numEdges() int64 { return int64(len(g.edges)) }

// fwdBytes is the forward index's memory footprint.
func (g *succIndex) fwdBytes() int64 {
	return 4*int64(len(g.offsets)) + 4*int64(len(g.edges))
}

// buildSuccIndex constructs the forward CSR in two sharded sweeps with no
// per-edge atomics: sweep 1 counts enabled guards per chunk, a sequential
// prefix sum over the per-chunk totals assigns each chunk a disjoint slice
// of the edge array, and sweep 2 fills offsets and edges with a per-chunk
// local cursor. The index is skipped (passes then recompute successors on
// the fly) when state indices overflow int32 or the edge array would bust
// succIndexBudget — a decision made from the measured edge count, not from
// Count × nA. On the spill tier the budget does not apply: the arrays are
// allocated as mmap'd segment files, filled, and sealed read-only.
func (sp *Space) buildSuccIndex(ctx context.Context) error {
	if sp.Count > math.MaxInt32 {
		return nil
	}
	if sp.arena == nil && 4*(sp.Count+1) > succIndexBudget {
		return nil
	}
	// The progress hint is 2·Count: the counting sweep and the fill sweep
	// each visit every state once.
	span := startPass(sp.opts, PassSuccTable, 2*sp.Count)
	workers := sp.workers()
	nChunks := (sp.Count + chunkStates - 1) / chunkStates
	chunkBase := make([]int64, nChunks)
	scr := sp.newStates()
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		var n int64
		for i := lo; i < hi; i++ {
			sp.stateInto(i, st)
			for _, a := range sp.P.Actions {
				if a.Guard(st) {
					n++
				}
			}
		}
		chunkBase[lo/chunkStates] = n
	})
	if err != nil {
		return err
	}
	var total int64
	for c := range chunkBase {
		chunkBase[c], total = total, total+chunkBase[c]
	}
	if sp.arena == nil && 4*(sp.Count+1)+4*total > succIndexBudget {
		// Over budget: surface the measured edge count on the span (bytes 0
		// = nothing materialized) and leave the space index-free.
		span.endSized(sp.Count, total, 0)
		return nil
	}
	g := &succIndex{}
	if sp.arena != nil {
		offSeg, err := sp.arena.allocSegment(4 * (sp.Count + 1))
		if err != nil {
			return err
		}
		edgeSeg, err := sp.arena.allocSegment(4 * total)
		if err != nil {
			return err
		}
		g.offsets, g.edges = u32view(offSeg.data), i32view(edgeSeg.data)
		defer func() { offSeg.seal(); edgeSeg.seal() }()
	} else {
		g.offsets, g.edges = make([]uint32, sp.Count+1), make([]int32, total)
	}
	pairs := sp.newStatePairs()
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		st, tmp := pairs[worker].st, pairs[worker].tmp
		cur := chunkBase[lo/chunkStates]
		for i := lo; i < hi; i++ {
			sp.stateInto(i, st)
			g.offsets[i] = uint32(cur)
			for _, a := range sp.P.Actions {
				if !a.Guard(st) {
					continue
				}
				a.ApplyInto(st, tmp)
				g.edges[cur] = int32(sp.indexOf(tmp))
				cur++
			}
		}
	})
	if err != nil {
		return err
	}
	g.offsets[sp.Count] = uint32(total)
	sp.idx = g
	if sp.arena != nil {
		span.addSpilled(g.fwdBytes())
	}
	span.endSized(sp.Count, total, g.fwdBytes())
	return nil
}

// predIndex returns the reverse CSR (per-state predecessor lists, one
// entry per forward edge so multiplicities match outstanding-counts
// exactly), building and caching it on the shared succIndex the first time
// any pass needs it. Two builders produce byte-identical source-ascending
// output:
//
//	counting sort:  a partitioned 4-phase counting sort with a packed
//	                (target, source) scratch array of 8·E bytes — no
//	                per-edge atomics, cache-friendly on sparse graphs;
//	atomic scatter: atomic in-degree counts, a prefix sum, an atomic
//	                per-target cursor scatter and a per-target sort — no
//	                scratch array at all.
//
// The in-RAM path picks by measured guard density (predScatterDensity);
// the spill tier always scatters (the 8·E scratch is exactly the RAM the
// tier exists to avoid) into mmap'd segments sealed read-only after the
// build.
func (sp *Space) predIndex(ctx context.Context) (revOff []uint32, revPred []int32, err error) {
	g := sp.idx
	g.revMu.Lock()
	defer g.revMu.Unlock()
	if g.revOff != nil {
		return g.revOff, g.revPred, nil
	}
	span := startPass(sp.opts, PassPredTable, sp.Count)
	E := g.numEdges()

	scatter := sp.arena != nil
	switch predBuilder {
	case 1:
		scatter = false
	case 2:
		scatter = true
	default:
		if !scatter && sp.Count > 0 && sp.nA > 0 {
			density := float64(E) / (float64(sp.Count) * float64(sp.nA))
			scatter = density >= predScatterDensity
		}
	}

	var seal func()
	if sp.arena != nil {
		offSeg, err := sp.arena.allocSegment(4 * (sp.Count + 1))
		if err != nil {
			return nil, nil, err
		}
		predSeg, err := sp.arena.allocSegment(4 * E)
		if err != nil {
			return nil, nil, err
		}
		revOff, revPred = u32view(offSeg.data), i32view(predSeg.data)
		seal = func() { offSeg.seal(); predSeg.seal() }
	} else {
		revOff, revPred = make([]uint32, sp.Count+1), make([]int32, E)
	}

	if scatter {
		err = sp.buildPredScatter(ctx, revOff, revPred)
	} else {
		err = sp.buildPredCounting(ctx, revOff, revPred)
	}
	if err != nil {
		return nil, nil, err
	}
	if seal != nil {
		seal()
		span.addSpilled(4*int64(len(revOff)) + 4*int64(len(revPred)))
	}
	g.revOff, g.revPred = revOff, revPred
	span.endSized(sp.Count, E, 4*int64(len(revOff))+4*int64(len(revPred)))
	return revOff, revPred, nil
}

// buildPredCounting fills the reverse CSR with a parallel counting sort
// over target partitions — no per-edge atomics, and the result is
// byte-identical for every worker count:
//
//	phase A: per-(source-chunk, target-partition) edge counts;
//	phase B: sequential prefix sums assigning every (chunk, partition)
//	         pair a disjoint slice of a partition-grouped scratch array;
//	phase C: sharded scatter of (target, source) pairs into the scratch
//	         (each chunk owns its reserved slots);
//	phase D: per-partition counting sort into the final arrays (each
//	         partition owns a disjoint range of revOff/revPred).
func (sp *Space) buildPredCounting(ctx context.Context, revOff []uint32, revPred []int32) error {
	g := sp.idx
	workers := sp.workers()
	nChunks := (sp.Count + chunkStates - 1) / chunkStates
	nPart := int64(workers) * 4
	if nPart > nChunks {
		nPart = nChunks
	}
	if nPart < 1 {
		nPart = 1
	}
	partSize := (sp.Count + nPart - 1) / nPart
	E := g.numEdges()

	// Phase A: count edges per (source chunk, target partition).
	pos := make([]int64, nChunks*nPart)
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		row := pos[(lo/chunkStates)*nPart : (lo/chunkStates+1)*nPart]
		for _, j := range g.edges[g.offsets[lo]:g.offsets[hi]] {
			row[int64(j)/partSize]++
		}
	})
	if err != nil {
		return err
	}

	// Phase B: partition-major prefix sum; pos becomes the scatter cursor
	// of each (chunk, partition) pair, partStart the final edge range of
	// each partition.
	partStart := make([]int64, nPart+1)
	var run int64
	for p := int64(0); p < nPart; p++ {
		partStart[p] = run
		for c := int64(0); c < nChunks; c++ {
			pos[c*nPart+p], run = run, run+pos[c*nPart+p]
		}
	}
	partStart[nPart] = run

	// Phase C: scatter packed (target, source) pairs, grouped by target
	// partition. Within a partition the scratch order is source-ascending
	// because chunks were laid out in ascending order by phase B.
	scratch := make([]uint64, E)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		cur := pos[(lo/chunkStates)*nPart : (lo/chunkStates+1)*nPart]
		for i := lo; i < hi; i++ {
			for _, j := range g.out(i) {
				p := int64(j) / partSize
				scratch[cur[p]] = uint64(j)<<32 | uint64(i)
				cur[p]++
			}
		}
	})
	if err != nil {
		return err
	}

	// Phase D: per-partition counting sort into the final arrays. deg is
	// shared scratch but partitions own disjoint target ranges.
	deg := make([]int32, sp.Count)
	err = parallelItems(ctx, workers, int(nPart), func(pi int) {
		p := int64(pi)
		tlo, thi := p*partSize, min((p+1)*partSize, sp.Count)
		seg := scratch[partStart[p]:partStart[p+1]]
		for _, packed := range seg {
			deg[packed>>32]++
		}
		cursor := partStart[p]
		for t := tlo; t < thi; t++ {
			revOff[t] = uint32(cursor)
			cursor += int64(deg[t])
			deg[t] = 0
		}
		for _, packed := range seg {
			t := packed >> 32
			revPred[int64(revOff[t])+int64(deg[t])] = int32(packed & math.MaxUint32)
			deg[t]++
		}
	})
	if err != nil {
		return err
	}
	revOff[sp.Count] = uint32(E)
	return nil
}

// buildPredScatter fills the reverse CSR without any scratch array:
// atomic in-degree counts, a sequential prefix sum, an atomic per-target
// cursor scatter of the sources, and a per-target ascending sort. The
// final sort makes the output source-ascending per target — byte-identical
// to the counting-sort builder for every worker count and schedule.
func (sp *Space) buildPredScatter(ctx context.Context, revOff []uint32, revPred []int32) error {
	g := sp.idx
	workers := sp.workers()

	// Phase 1: atomic in-degree counts.
	deg := make([]int32, sp.Count)
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		for _, j := range g.edges[g.offsets[lo]:g.offsets[hi]] {
			atomic.AddInt32(&deg[j], 1)
		}
	})
	if err != nil {
		return err
	}

	// Phase 2: sequential prefix sum; deg becomes the scatter cursor.
	var run int64
	for t := int64(0); t < sp.Count; t++ {
		revOff[t] = uint32(run)
		run += int64(deg[t])
		deg[t] = 0
	}
	revOff[sp.Count] = uint32(run)

	// Phase 3: scatter sources behind an atomic per-target cursor.
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			for _, j := range g.out(i) {
				slot := int64(revOff[j]) + int64(atomic.AddInt32(&deg[j], 1)) - 1
				revPred[slot] = int32(i)
			}
		}
	})
	if err != nil {
		return err
	}

	// Phase 4: per-target ascending sort restores determinism.
	return parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		for t := lo; t < hi; t++ {
			if row := revPred[revOff[t]:revOff[t+1]]; len(row) > 1 {
				slices.Sort(row)
			}
		}
	})
}

// actionAt recovers the action behind the rank-th enabled edge of state i.
// Edges are stored in ascending action order, so the rank is the number of
// enabled guards preceding the action; only witness construction pays this
// rescan.
func (sp *Space) actionAt(i, rank int64) *program.Action {
	st := sp.State(i)
	n := int64(0)
	for _, a := range sp.P.Actions {
		if !a.Guard(st) {
			continue
		}
		if n == rank {
			return a
		}
		n++
	}
	return nil
}
