package verify

import (
	"context"
	"math"
	"sync"

	"nonmask/internal/program"
)

// succIndexBudget caps the memory spent on each precomputed transition
// index (the forward CSR, and separately the reverse CSR mirroring it).
// Unlike the old dense per-action table, the budget is charged against the
// *actual* enabled-edge count E discovered by the counting sweep:
//
//	forward bytes = 4·(Count+1) + 4·E   (uint32 offsets + int32 targets)
//
// Above the budget (or above int32 state indices) the passes fall back to
// recomputing successors on the fly. A var rather than a const so tests
// can force the fallback (see export_test.go).
var succIndexBudget = int64(1) << 31 // 2 GiB per index

// succIndex is the CSR transition graph of a Space, covering only enabled
// transitions: state i's successors are edges[offsets[i]:offsets[i+1]], in
// ascending action order. The entry payload is the 4-byte successor index
// alone — the acting action is implicit as the edge's rank among i's
// enabled guards and is recovered by actionAt only on witness paths, so
// edge storage stays at 4 bytes even for near-dense programs.
//
// The reverse CSR (predecessors, multi-edges kept) is built lazily by
// predIndex on first use and cached here; derived stage spaces share the
// struct by pointer, so one Check builds it at most once.
type succIndex struct {
	offsets []uint32 // len Count+1
	edges   []int32  // successor state per enabled (state, action)

	revMu   sync.Mutex
	revOff  []uint32 // len Count+1; nil until built
	revPred []int32  // predecessor state per enabled edge, source-ascending
}

// out returns the successor indices of state i, one per enabled action in
// action order.
func (g *succIndex) out(i int64) []int32 {
	return g.edges[g.offsets[i]:g.offsets[i+1]]
}

// numEdges returns E, the number of enabled transitions in the space.
func (g *succIndex) numEdges() int64 { return int64(len(g.edges)) }

// fwdBytes is the forward index's memory footprint.
func (g *succIndex) fwdBytes() int64 {
	return 4*int64(len(g.offsets)) + 4*int64(len(g.edges))
}

// buildSuccIndex constructs the forward CSR in two sharded sweeps with no
// per-edge atomics: sweep 1 counts enabled guards per chunk, a sequential
// prefix sum over the per-chunk totals assigns each chunk a disjoint slice
// of the edge array, and sweep 2 fills offsets and edges with a per-chunk
// local cursor. The index is skipped (passes then recompute successors on
// the fly) when state indices overflow int32 or the edge array would bust
// succIndexBudget — a decision made from the measured edge count, not from
// Count × nA.
func (sp *Space) buildSuccIndex(ctx context.Context) error {
	if sp.Count > math.MaxInt32 || 4*(sp.Count+1) > succIndexBudget {
		return nil
	}
	// The progress hint is 2·Count: the counting sweep and the fill sweep
	// each visit every state once.
	span := startPass(sp.opts, PassSuccTable, 2*sp.Count)
	workers := sp.workers()
	nChunks := (sp.Count + chunkStates - 1) / chunkStates
	chunkBase := make([]int64, nChunks)
	scr := sp.newStates()
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		var n int64
		for i := lo; i < hi; i++ {
			sp.P.Schema.StateInto(i, st)
			for _, a := range sp.P.Actions {
				if a.Guard(st) {
					n++
				}
			}
		}
		chunkBase[lo/chunkStates] = n
	})
	if err != nil {
		return err
	}
	var total int64
	for c := range chunkBase {
		chunkBase[c], total = total, total+chunkBase[c]
	}
	if 4*(sp.Count+1)+4*total > succIndexBudget {
		// Over budget: surface the measured edge count on the span (bytes 0
		// = nothing materialized) and leave the space index-free.
		span.endSized(sp.Count, total, 0)
		return nil
	}
	g := &succIndex{offsets: make([]uint32, sp.Count+1), edges: make([]int32, total)}
	pairs := sp.newStatePairs()
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		st, tmp := pairs[worker].st, pairs[worker].tmp
		cur := chunkBase[lo/chunkStates]
		for i := lo; i < hi; i++ {
			sp.P.Schema.StateInto(i, st)
			g.offsets[i] = uint32(cur)
			for _, a := range sp.P.Actions {
				if !a.Guard(st) {
					continue
				}
				a.ApplyInto(st, tmp)
				g.edges[cur] = int32(sp.P.Schema.Index(tmp))
				cur++
			}
		}
	})
	if err != nil {
		return err
	}
	g.offsets[sp.Count] = uint32(total)
	sp.idx = g
	span.endSized(sp.Count, total, g.fwdBytes())
	return nil
}

// predIndex returns the reverse CSR (per-state predecessor lists, one
// entry per forward edge so multiplicities match outstanding-counts
// exactly), building and caching it on the shared succIndex the first time
// any pass needs it. Construction is a parallel counting sort over target
// partitions — no per-edge atomics, and the result is byte-identical for
// every worker count:
//
//	phase A: per-(source-chunk, target-partition) edge counts;
//	phase B: sequential prefix sums assigning every (chunk, partition)
//	         pair a disjoint slice of a partition-grouped scratch array;
//	phase C: sharded scatter of (target, source) pairs into the scratch
//	         (each chunk owns its reserved slots);
//	phase D: per-partition counting sort into the final arrays (each
//	         partition owns a disjoint range of revOff/revPred).
func (sp *Space) predIndex(ctx context.Context) (revOff []uint32, revPred []int32, err error) {
	g := sp.idx
	g.revMu.Lock()
	defer g.revMu.Unlock()
	if g.revOff != nil {
		return g.revOff, g.revPred, nil
	}
	span := startPass(sp.opts, PassPredTable, sp.Count)
	workers := sp.workers()
	nChunks := (sp.Count + chunkStates - 1) / chunkStates
	nPart := int64(workers) * 4
	if nPart > nChunks {
		nPart = nChunks
	}
	if nPart < 1 {
		nPart = 1
	}
	partSize := (sp.Count + nPart - 1) / nPart
	E := g.numEdges()

	// Phase A: count edges per (source chunk, target partition).
	pos := make([]int64, nChunks*nPart)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		row := pos[(lo/chunkStates)*nPart : (lo/chunkStates+1)*nPart]
		for _, j := range g.edges[g.offsets[lo]:g.offsets[hi]] {
			row[int64(j)/partSize]++
		}
	})
	if err != nil {
		return nil, nil, err
	}

	// Phase B: partition-major prefix sum; pos becomes the scatter cursor
	// of each (chunk, partition) pair, partStart the final edge range of
	// each partition.
	partStart := make([]int64, nPart+1)
	var run int64
	for p := int64(0); p < nPart; p++ {
		partStart[p] = run
		for c := int64(0); c < nChunks; c++ {
			pos[c*nPart+p], run = run, run+pos[c*nPart+p]
		}
	}
	partStart[nPart] = run

	// Phase C: scatter packed (target, source) pairs, grouped by target
	// partition. Within a partition the scratch order is source-ascending
	// because chunks were laid out in ascending order by phase B.
	scratch := make([]uint64, E)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		cur := pos[(lo/chunkStates)*nPart : (lo/chunkStates+1)*nPart]
		for i := lo; i < hi; i++ {
			for _, j := range g.out(i) {
				p := int64(j) / partSize
				scratch[cur[p]] = uint64(j)<<32 | uint64(i)
				cur[p]++
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}

	// Phase D: per-partition counting sort into the final arrays. deg is
	// shared scratch but partitions own disjoint target ranges.
	revOff = make([]uint32, sp.Count+1)
	revPred = make([]int32, E)
	deg := make([]int32, sp.Count)
	err = parallelItems(ctx, workers, int(nPart), func(pi int) {
		p := int64(pi)
		tlo, thi := p*partSize, min((p+1)*partSize, sp.Count)
		seg := scratch[partStart[p]:partStart[p+1]]
		for _, packed := range seg {
			deg[packed>>32]++
		}
		cursor := partStart[p]
		for t := tlo; t < thi; t++ {
			revOff[t] = uint32(cursor)
			cursor += int64(deg[t])
			deg[t] = 0
		}
		for _, packed := range seg {
			t := packed >> 32
			revPred[int64(revOff[t])+int64(deg[t])] = int32(packed & math.MaxUint32)
			deg[t]++
		}
	})
	if err != nil {
		return nil, nil, err
	}
	revOff[sp.Count] = uint32(E)
	g.revOff, g.revPred = revOff, revPred
	span.endSized(sp.Count, E, 4*int64(len(revOff))+4*int64(len(revPred)))
	return revOff, revPred, nil
}

// actionAt recovers the action behind the rank-th enabled edge of state i.
// Edges are stored in ascending action order, so the rank is the number of
// enabled guards preceding the action; only witness construction pays this
// rescan.
func (sp *Space) actionAt(i, rank int64) *program.Action {
	st := sp.State(i)
	n := int64(0)
	for _, a := range sp.P.Actions {
		if !a.Guard(st) {
			continue
		}
		if n == rank {
			return a
		}
		n++
	}
	return nil
}
