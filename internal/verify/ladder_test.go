// Metamorphic tests of the scaling ladder: the space tier — full,
// quotient (fingerprint or exact map), spill — is a pure capacity choice,
// so every verdict, witness, and metric on every checked-in GCL model
// must be bit-identical across all of them and across worker counts.
// The refusal paths (fingerprint collision) and the crash hygiene of the
// spill tier (kill mid-spill, sweep at next open) are pinned here too.
package verify_test

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"nonmask/internal/gcl"
	"nonmask/internal/program"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/verify"
)

// moduleSpecs derives the per-constraint metric specs the same way
// gclrun does, so the ladder runs the full metrics suite including
// constraint costs.
func moduleSpecs(m *gcl.Module) []verify.ConstraintSpec {
	specs := make([]verify.ConstraintSpec, 0, len(m.Set.Constraints))
	for _, c := range m.Set.Constraints {
		specs = append(specs, verify.ConstraintSpec{Name: c.Pred.Name, Pred: c.Pred})
	}
	return specs
}

// compareMetrics asserts bit-identical tolerance metrics: the engine
// fixes its floating-point summation order, so even the float aggregates
// must agree exactly across tiers and worker counts.
func compareMetrics(t *testing.T, want, got *verify.ToleranceMetrics) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("metrics presence differs: want %v, got %v", want != nil, got != nil)
	}
	if want == nil {
		return
	}
	if !reflect.DeepEqual(want.Profile, got.Profile) {
		t.Errorf("Profile: want %v, got %v", want.Profile, got.Profile)
	}
	if want.MaxDistance != got.MaxDistance || want.UnreachableStates != got.UnreachableStates {
		t.Errorf("distance: want (%d,%d), got (%d,%d)",
			want.MaxDistance, want.UnreachableStates, got.MaxDistance, got.UnreachableStates)
	}
	if want.MeanDistance != got.MeanDistance {
		t.Errorf("MeanDistance: want %v, got %v", want.MeanDistance, got.MeanDistance)
	}
	if want.WorstMeasured != got.WorstMeasured || want.WorstSteps != got.WorstSteps ||
		want.MeanWorstSteps != got.MeanWorstSteps {
		t.Errorf("worst: want (%v,%d,%v), got (%v,%d,%v)",
			want.WorstMeasured, want.WorstSteps, want.MeanWorstSteps,
			got.WorstMeasured, got.WorstSteps, got.MeanWorstSteps)
	}
	if want.ExpectedMeasured != got.ExpectedMeasured || want.ExpectedSteps != got.ExpectedSteps ||
		want.MeanExpectedSteps != got.MeanExpectedSteps {
		t.Errorf("expected: want (%v,%v,%v), got (%v,%v,%v)",
			want.ExpectedMeasured, want.ExpectedSteps, want.MeanExpectedSteps,
			got.ExpectedMeasured, got.ExpectedSteps, got.MeanExpectedSteps)
	}
	if !reflect.DeepEqual(want.Constraints, got.Constraints) {
		t.Errorf("Constraints: want %+v, got %+v", want.Constraints, got.Constraints)
	}
}

// TestSpaceLadderMetamorphic cross-runs every GCL model through every
// tier of the ladder — identity-group quotient (fingerprint and exact
// map) and the spill tier — across worker counts, against the full
// in-RAM baseline. The identity group makes every orbit a singleton, so
// the quotient machinery (canonicalization scan, fingerprint lookup,
// orbit weights) runs end-to-end while the answers must match the full
// space exactly.
func TestSpaceLadderMetamorphic(t *testing.T) {
	ctx := context.Background()
	for name, m := range gclModels(t) {
		t.Run(name, func(t *testing.T) {
			specs := moduleSpecs(m)
			base, err := verify.Check(ctx, m.Program, m.S, m.T,
				verify.WithWorkers(1), verify.WithMetrics(), verify.WithConstraints(specs...))
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if base.Space.Mode() != verify.SpaceFull {
				t.Fatalf("baseline ran on %v, want full", base.Space.Mode())
			}

			type tier struct {
				name    string
				workers int
				options []verify.Option
				mode    verify.SpaceMode
			}
			tiers := []tier{
				{"quotient-fingerprint-w1", 1, []verify.Option{
					verify.WithSpaceMode(verify.SpaceQuotient),
					verify.WithSymmetry(verify.IdentitySymmetry()),
				}, verify.SpaceQuotient},
				{"quotient-fingerprint-w4", 4, []verify.Option{
					verify.WithSpaceMode(verify.SpaceQuotient),
					verify.WithSymmetry(verify.IdentitySymmetry()),
				}, verify.SpaceQuotient},
				{"quotient-exact-w1", 1, []verify.Option{
					verify.WithSpaceMode(verify.SpaceQuotient),
					verify.WithSymmetry(verify.IdentitySymmetry()),
					verify.WithQuotientMap(verify.MapExact),
				}, verify.SpaceQuotient},
				{"spill-w1", 1, []verify.Option{
					verify.WithSpaceMode(verify.SpaceSpill),
					verify.WithSpillDir(t.TempDir()),
				}, verify.SpaceSpill},
				{"spill-w4", 4, []verify.Option{
					verify.WithSpaceMode(verify.SpaceSpill),
					verify.WithSpillDir(t.TempDir()),
				}, verify.SpaceSpill},
			}
			for _, tr := range tiers {
				t.Run(tr.name, func(t *testing.T) {
					opts := append([]verify.Option{
						verify.WithWorkers(tr.workers), verify.WithMetrics(),
						verify.WithConstraints(specs...),
					}, tr.options...)
					rep, err := verify.Check(ctx, m.Program, m.S, m.T, opts...)
					if err != nil {
						t.Fatal(err)
					}
					defer rep.Close()
					if rep.Space.Mode() != tr.mode {
						t.Fatalf("ran on %v, want %v", rep.Space.Mode(), tr.mode)
					}
					if tr.mode == verify.SpaceQuotient {
						if reps, _ := rep.Space.QuotientStats(); reps != base.Space.Count {
							t.Fatalf("identity quotient has %d reps, want %d (every orbit a singleton)",
								reps, base.Space.Count)
						}
					}
					if tr.mode == verify.SpaceSpill {
						if seg, _ := rep.Space.SpillStats(); seg == 0 {
							t.Fatal("spill tier materialized no segment bytes")
						}
					}
					compareReports(t, base, rep)
					compareMetrics(t, base.Metrics, rep.Metrics)
				})
			}
		})
	}
}

// TestFingerprintCollisionRefusal substitutes a degenerate hash that
// maps every state to the same 64-bit fingerprint: building the quotient
// lookup must refuse with a FingerprintCollision naming both colliding
// representatives — never a silent wrong verdict — and the exact map
// must still check the same instance.
func TestFingerprintCollisionRefusal(t *testing.T) {
	defer verify.SetStateFingerprint(func(*program.State) uint64 { return 0xdead })()
	inst, err := tokenring.NewRing(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, err = verify.Check(ctx, inst.P, inst.S, nil,
		verify.WithSpaceMode(verify.SpaceQuotient),
		verify.WithSymmetry(verify.IdentitySymmetry()))
	var coll *verify.FingerprintCollision
	if !errors.As(err, &coll) {
		t.Fatalf("want FingerprintCollision, got %v", err)
	}
	if coll.A == nil || coll.B == nil || coll.A.String() == coll.B.String() {
		t.Fatalf("collision report must name two distinct representatives, got %v / %v", coll.A, coll.B)
	}
	if coll.Fingerprint != 0xdead {
		t.Fatalf("collision fingerprint = %#x, want 0xdead", coll.Fingerprint)
	}

	// The documented retry path: the exact map does not hash, so the same
	// instance checks fine under the same degenerate fingerprint.
	rep, err := verify.Check(ctx, inst.P, inst.S, nil,
		verify.WithSpaceMode(verify.SpaceQuotient),
		verify.WithSymmetry(verify.IdentitySymmetry()),
		verify.WithQuotientMap(verify.MapExact))
	if err != nil {
		t.Fatalf("exact-map retry: %v", err)
	}
	if !rep.Unfair.Converges {
		t.Fatal("ring must converge")
	}
}

// TestPredBuilderByteIdentity pins the density-adaptive reverse-CSR
// build: the counting-sort and atomic-scatter strategies must produce
// byte-identical offset and predecessor arrays (both source-ascending),
// so the adaptive pick is invisible to every consumer.
func TestPredBuilderByteIdentity(t *testing.T) {
	inst, err := tokenring.NewRing(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	type built struct {
		off  []uint32
		pred []int32
	}
	results := make(map[int]built)
	for builder := 0; builder <= 2; builder++ {
		restore := verify.SetPredBuilder(builder)
		rep, err := verify.Check(ctx, inst.P, inst.S, nil)
		if err != nil {
			restore()
			t.Fatalf("builder %d: %v", builder, err)
		}
		off, pred, err := rep.Space.ReverseIndex()
		restore()
		if err != nil {
			t.Fatalf("builder %d reverse index: %v", builder, err)
		}
		results[builder] = built{off, pred}
	}
	for builder := 1; builder <= 2; builder++ {
		if !reflect.DeepEqual(results[0].off, results[builder].off) {
			t.Errorf("builder %d offsets differ from adaptive", builder)
		}
		if !reflect.DeepEqual(results[0].pred, results[builder].pred) {
			t.Errorf("builder %d predecessors differ from adaptive", builder)
		}
	}
}

// TestSpillKillLeftoverSweep is the crash half of the temp hygiene
// contract: a child process forced onto the named-file fallback is
// SIGKILLed mid-spill, its ".csspill-<pid>-*" leftovers must survive the
// kill (proving the window exists), and the next arena open on the same
// directory must sweep them because the pid is dead.
func TestSpillKillLeftoverSweep(t *testing.T) {
	if os.Getenv("VERIFY_SPILL_CHILD_DIR") != "" {
		t.Skip("child-only helper")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestSpillKillChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "VERIFY_SPILL_CHILD_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the child's first named spill file, then kill it mid-run.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if names := spillFiles(t, dir); len(names) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child produced no named spill files within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	left := spillFiles(t, dir)
	if len(left) == 0 {
		t.Fatal("kill left no spill files — the leak window this test guards never opened")
	}
	pidPrefix := ".csspill-" + strconv.Itoa(cmd.Process.Pid) + "-"
	for _, name := range left {
		if !strings.HasPrefix(name, pidPrefix) {
			t.Fatalf("leftover %q does not carry the dead child's pid prefix %q", name, pidPrefix)
		}
	}

	// A fresh spill check on the same directory opens an arena, which
	// sweeps the dead child's files; its own temps are removed at Close.
	defer verify.SetSpillNamedFallback(true)()
	inst, err := tokenring.NewRing(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(context.Background(), inst.P, inst.S, nil,
		verify.WithSpaceMode(verify.SpaceSpill), verify.WithSpillDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if names := spillFiles(t, dir); len(names) != 0 {
		t.Fatalf("spill files remain after sweep and close: %v", names)
	}
}

// TestSpillKillChildProcess is the subprocess body of
// TestSpillKillLeftoverSweep: it spills a multi-second check into the
// parent's directory on the named-file fallback and expects to be killed
// before finishing. Skipped unless launched by the parent.
func TestSpillKillChildProcess(t *testing.T) {
	dir := os.Getenv("VERIFY_SPILL_CHILD_DIR")
	if dir == "" {
		t.Skip("only run as a subprocess of TestSpillKillLeftoverSweep")
	}
	defer verify.SetSpillNamedFallback(true)()
	inst, err := tokenring.NewRing(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := verify.Check(context.Background(), inst.P, inst.S, nil,
		verify.WithSpaceMode(verify.SpaceSpill), verify.WithSpillDir(dir))
	if err == nil {
		rep.Close()
	}
	t.Fatal("child expected to be killed mid-spill but finished")
}

// spillFiles lists the named spill temp files currently in dir.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".csspill-") {
			names = append(names, e.Name())
		}
	}
	return names
}
