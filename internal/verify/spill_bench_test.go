// Benchmarks for the scaling ladder: the spill tier against the
// on-the-fly fallback it replaces beyond the RAM budget, and the
// density-adaptive reverse-CSR build against its two fixed strategies.
//
// Run with:
//
//	go test ./internal/verify -bench 'Spill|PredBuild' -benchtime 3x -run '^$'
package verify_test

import (
	"context"
	"testing"

	"nonmask/internal/protocols/diffusing"
	"nonmask/internal/protocols/tokenring"
	"nonmask/internal/verify"
)

// benchCheckMetrics1M runs the full metrics suite on the 1M-state
// diffusing instance — the workload the spill-vs-fallback claim is made
// on. Metrics is the representative beyond-RAM workload: the distance,
// worst-step and expected-step passes each re-stream the transition
// graph, so an instance that keeps its CSR (in RAM or in segment files)
// pays the guard evaluations once, while the fallback pays them again
// every pass.
func benchCheckMetrics1M(b *testing.B, options ...verify.Option) {
	inst, err := diffusing.New(diffusing.Binary(10))
	if err != nil {
		b.Fatal(err)
	}
	d := inst.Design
	ctx := context.Background()
	opts := append([]verify.Option{verify.WithMetrics()}, options...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Check(ctx, d.TolerantProgram(), d.S, d.T, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Metrics == nil || !rep.Metrics.WorstMeasured {
			b.Fatal("benchmark needs the full metrics suite")
		}
		if err := rep.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckMetricsRAM is the in-RAM CSR baseline.
func BenchmarkCheckMetricsRAM(b *testing.B) { benchCheckMetrics1M(b) }

// BenchmarkCheckMetricsSpill runs the same workload with the CSR in
// mmap'd segment files — the tier every instance beyond the 2 GiB budget
// escalates to.
func BenchmarkCheckMetricsSpill(b *testing.B) {
	benchCheckMetrics1M(b,
		verify.WithSpaceMode(verify.SpaceSpill), verify.WithSpillDir(b.TempDir()))
}

// BenchmarkCheckMetricsFallback forces the on-the-fly path (budget too
// small for any index) — what the same beyond-budget instance ran on
// before the spill tier existed. Compare against
// BenchmarkCheckMetricsSpill for the tier's net win.
func BenchmarkCheckMetricsFallback(b *testing.B) {
	defer verify.SetSuccIndexBudget(1)()
	benchCheckMetrics1M(b)
}

// benchPredBuild times the end-to-end Check on the guard-dense printed
// mod-K ring (~6.3 enabled actions per state out of 8) with a pinned
// reverse-CSR strategy. The convergence wave consumes the reverse index,
// so the build cost is on the critical path.
func benchPredBuild(b *testing.B, builder int) {
	defer verify.SetPredBuilder(builder)()
	inst, err := tokenring.NewRing(7, 7)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := verify.Check(ctx, inst.P, inst.S, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Unfair.Converges {
			b.Fatal("ring must converge")
		}
	}
}

// BenchmarkPredBuildAdaptive is the shipping configuration: counting
// sort below predScatterDensity, atomic scatter above it.
func BenchmarkPredBuildAdaptive(b *testing.B) { benchPredBuild(b, 0) }

// BenchmarkPredBuildCounting pins the partitioned counting sort — the
// sparse-instance winner, ~10% slower single-core on dense guards.
func BenchmarkPredBuildCounting(b *testing.B) { benchPredBuild(b, 1) }

// BenchmarkPredBuildScatter pins the atomic-scatter build the adaptive
// policy picks on this dense instance.
func BenchmarkPredBuildScatter(b *testing.B) { benchPredBuild(b, 2) }
