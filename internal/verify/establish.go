package verify

import (
	"fmt"

	"nonmask/internal/program"
)

// forEachProjected enumerates every assignment to the given variables, with
// all other variables pinned at their domain minimum, invoking fn on each.
// Enumeration stops early when fn returns false. It fails when the
// projected space exceeds opts.MaxStates.
func forEachProjected(schema *program.Schema, vars []program.VarID,
	opts Options, fn func(*program.State) bool) error {
	if err := opts.validate(); err != nil {
		return err
	}
	vars = program.SortVarIDs(append([]program.VarID(nil), vars...))
	count := int64(1)
	for _, v := range vars {
		sz := schema.Spec(v).Dom.Size()
		if count > opts.maxStates()/sz {
			return fmt.Errorf("verify: projected space too large (%d vars)", len(vars))
		}
		count *= sz
	}
	st := schema.NewState()
	for i := int64(0); i < count; i++ {
		rem := i
		for k := len(vars) - 1; k >= 0; k-- {
			dom := schema.Spec(vars[k]).Dom
			st.Set(vars[k], dom.Min+int32(rem%dom.Size()))
			rem /= dom.Size()
		}
		if !fn(st) {
			return nil
		}
	}
	return nil
}

// FindProjected searches the space projected onto vars (other variables
// pinned at their domain minimum) for a state satisfying cond, returning a
// clone of the first hit or nil.
func FindProjected(schema *program.Schema, vars []program.VarID, opts Options,
	cond func(*program.State) bool) (*program.State, error) {
	var found *program.State
	err := forEachProjected(schema, vars, opts, func(st *program.State) bool {
		if cond(st) {
			found = st.Clone()
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}

// CheckEstablishes decides whether executing action a from any state where
// its guard (and all given predicates) hold yields a state satisfying c —
// the "establish c" half of the paper's convergence-action form
// "¬c -> establish c while preserving T" (Section 3). One-step
// establishment is what bounds each convergence action to at most one
// execution per rank in the proofs of Theorems 1 and 2.
func CheckEstablishes(strategy Strategy, schema *program.Schema, a *program.Action,
	c *program.Predicate, given []*program.Predicate, opts Options) (*PreserveResult, error) {
	var vars []program.VarID
	switch strategy {
	case Exhaustive:
		for v := 0; v < schema.Len(); v++ {
			vars = append(vars, program.VarID(v))
		}
	case Projected:
		vars = a.Footprint()
		vars = append(vars, c.Vars...)
		for _, g := range given {
			vars = append(vars, g.Vars...)
		}
	default:
		return nil, fmt.Errorf("verify: unknown strategy %v", strategy)
	}
	res := &PreserveResult{Preserves: true}
	err := forEachProjected(schema, vars, opts, func(st *program.State) bool {
		if !a.Guard(st) {
			return true
		}
		for _, g := range given {
			if !g.Holds(st) {
				return true
			}
		}
		next := a.Apply(st)
		if !c.Holds(next) {
			res.Preserves = false
			res.State = st.Clone()
			res.Next = next
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
