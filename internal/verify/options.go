package verify

import (
	"fmt"
	"runtime"
	"time"

	"nonmask/internal/obs"
	"nonmask/internal/program"
)

// DefaultMaxStates bounds full-space enumeration. The packed bitsets and
// int32 successor tables keep per-state bookkeeping small enough that
// 1<<26 states costs a few hundred megabytes; the seed checker's []bool
// bookkeeping capped out at 1<<22.
const DefaultMaxStates = int64(1) << 26

// SpaceMode selects how the state space is represented (DESIGN §13): the
// scaling ladder from in-RAM full product, through symmetry quotients, to
// disk-spilled CSR segments.
type SpaceMode int

const (
	// SpaceAuto (the default) engages the ladder automatically: the full
	// in-RAM representation when the CSR fits its memory budget, the
	// symmetry quotient when one is advertised and the full CSR does not
	// fit, the spill tier when a spill directory is configured and nothing
	// smaller fits, and the on-the-fly fallback last.
	SpaceAuto SpaceMode = iota
	// SpaceFull forces the classic full-product representation (over
	// budget means the on-the-fly fallback, never quotient or spill).
	SpaceFull
	// SpaceQuotient forces symmetry reduction: enumeration, the CSR and
	// every pass run on canonical orbit representatives. Requires a
	// Symmetry (WithSymmetry or a registry advertisement).
	SpaceQuotient
	// SpaceSpill forces disk-backed operation: the forward and reverse CSR
	// are written as segment files and mmap'd read-only, and oversized BFS
	// frontiers overflow to sorted temp-file runs.
	SpaceSpill
)

// String returns the mode's flag spelling.
func (m SpaceMode) String() string {
	switch m {
	case SpaceAuto:
		return "auto"
	case SpaceFull:
		return "full"
	case SpaceQuotient:
		return "quotient"
	case SpaceSpill:
		return "spill"
	}
	return fmt.Sprintf("SpaceMode(%d)", int(m))
}

// ParseSpaceMode parses the -space-mode flag / job-option spelling. The
// empty string means SpaceAuto.
func ParseSpaceMode(s string) (SpaceMode, error) {
	switch s {
	case "", "auto":
		return SpaceAuto, nil
	case "full":
		return SpaceFull, nil
	case "quotient":
		return SpaceQuotient, nil
	case "spill":
		return SpaceSpill, nil
	}
	return 0, fmt.Errorf("verify: unknown space mode %q (want auto | full | quotient | spill)", s)
}

// QuotientMap selects the canonical-state lookup structure of the
// quotient tier.
type QuotientMap int

const (
	// MapFingerprint (the default) looks representatives up through an
	// open-addressed table of 64-bit state fingerprints. A fingerprint
	// collision between two distinct representatives is detected at build
	// time and makes the check refuse with a report naming both states —
	// never a silent wrong verdict.
	MapFingerprint QuotientMap = iota
	// MapExact looks representatives up by binary search over the sorted
	// representative index list: no hashing, no collision risk, O(log n)
	// per lookup. The metamorphic suites cross-check the two.
	MapExact
)

// String returns the map's flag spelling.
func (m QuotientMap) String() string {
	if m == MapExact {
		return "exact"
	}
	return "fingerprint"
}

// ParseQuotientMap parses the -quotient-map flag spelling.
func ParseQuotientMap(s string) (QuotientMap, error) {
	switch s {
	case "", "fingerprint":
		return MapFingerprint, nil
	case "exact":
		return MapExact, nil
	}
	return 0, fmt.Errorf("verify: unknown quotient map %q (want fingerprint | exact)", s)
}

// Options configures the checker. The zero value is ready to use: default
// state cap, one worker per CPU, projected preservation strategy, no
// deadline.
type Options struct {
	// MaxStates caps the size of the enumerated state space. Zero means
	// DefaultMaxStates (the zero-means-default convention used throughout
	// this package); negative values are rejected with an error by every
	// entry point rather than silently treated as the default.
	MaxStates int64
	// Workers is the number of goroutines sharding state enumeration and
	// the backward fixpoint passes. Zero means runtime.NumCPU(); one runs
	// every pass sequentially on the calling goroutine. Workers > 1
	// requires what the program model already promises: action guards,
	// bodies, and predicate Eval functions must be pure (no mutation of
	// shared state), since they are called concurrently.
	Workers int
	// Strategy selects how preservation facts are decided (Preserves,
	// CheckEstablishes). Zero means Projected.
	Strategy Strategy
	// Deadline, when positive, bounds the wall-clock time of a Check call;
	// it is applied as a context timeout on top of the caller's context.
	Deadline time.Duration
	// Tracer, when non-nil, receives one span per verifier pass (see the
	// Pass* constants and DESIGN §8). Check always collects spans onto
	// Report.Passes regardless; the tracer is the live event stream.
	// Implementations must be safe for concurrent use.
	Tracer obs.Tracer
	// Progress, when non-nil, is bumped by the sharded hot loops once per
	// work chunk and reset at pass boundaries; sample it from another
	// goroutine with Progress.Watch. Nil costs the loops one nil-check.
	Progress *obs.Progress
	// Metrics makes Check additionally run the quantitative
	// tolerance-metrics passes (distance profile, worst/expected
	// stabilization time, per-constraint recovery costs) and attach the
	// result to Report.Metrics. Off by default: the verdict path pays
	// nothing for the plumbing.
	Metrics bool
	// SpaceMode selects the state-space representation tier (DESIGN §13).
	// Zero (SpaceAuto) engages the ladder automatically.
	SpaceMode SpaceMode
	// Symmetry, when non-nil, is the canonicalization hook the quotient
	// tier reduces by. Registry entries advertise one per symmetric
	// protocol; it is ignored outside the quotient tier.
	Symmetry *Symmetry
	// QuotientMap selects the representative lookup structure of the
	// quotient tier (fingerprint table by default).
	QuotientMap QuotientMap
	// SpillDir is the directory the spill tier writes CSR segment files
	// and frontier runs into. Empty means os.TempDir() when spill is
	// forced; SpaceAuto never spills without an explicit directory.
	SpillDir string
}

// validate rejects malformed options. Every entry point of this package
// calls it, so a negative MaxStates fails loudly instead of silently
// falling back to the default (the seed behaviour).
func (o Options) validate() error {
	if o.MaxStates < 0 {
		return fmt.Errorf("verify: negative MaxStates %d (use 0 for the default %d)",
			o.MaxStates, DefaultMaxStates)
	}
	if o.Workers < 0 {
		return fmt.Errorf("verify: negative Workers %d (use 0 for runtime.NumCPU)", o.Workers)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("verify: negative Deadline %v", o.Deadline)
	}
	if o.SpaceMode < SpaceAuto || o.SpaceMode > SpaceSpill {
		return fmt.Errorf("verify: unknown SpaceMode %d", int(o.SpaceMode))
	}
	if o.QuotientMap < MapFingerprint || o.QuotientMap > MapExact {
		return fmt.Errorf("verify: unknown QuotientMap %d", int(o.QuotientMap))
	}
	if o.SpaceMode == SpaceQuotient && o.Symmetry == nil {
		return fmt.Errorf("verify: SpaceQuotient requires a Symmetry (the instance advertises none)")
	}
	return nil
}

func (o Options) maxStates() int64 {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

func (o Options) strategy() Strategy {
	if o.Strategy == 0 {
		return Projected
	}
	return o.Strategy
}

// Option is a functional option for Check, the package's unified entry
// point. Options compose left to right; later options win.
type Option func(*Options, *checkExtras)

// checkExtras holds Check-only configuration that does not belong on the
// Options struct shared with the legacy entry points.
type checkExtras struct {
	faults      []*program.Action
	constraints []ConstraintSpec
}

// WithWorkers shards enumeration and fixpoint passes across n goroutines.
// n == 1 forces the sequential path; n == 0 restores the default
// (runtime.NumCPU()).
func WithWorkers(n int) Option {
	return func(o *Options, _ *checkExtras) { o.Workers = n }
}

// WithMaxStates caps the enumerated state space at n states. n == 0
// restores the default (DefaultMaxStates); negative values make Check
// fail with an error.
func WithMaxStates(n int64) Option {
	return func(o *Options, _ *checkExtras) { o.MaxStates = n }
}

// WithStrategy selects the preservation-checking strategy recorded on the
// report's options (Exhaustive or Projected), for callers that feed the
// same option set into the theorem validators.
func WithStrategy(s Strategy) Option {
	return func(o *Options, _ *checkExtras) { o.Strategy = s }
}

// WithDeadline bounds the wall-clock time of the whole Check call. The
// deadline is implemented as a context timeout, so a Check that exceeds
// it returns context.DeadlineExceeded from whichever pass was running.
func WithDeadline(d time.Duration) Option {
	return func(o *Options, _ *checkExtras) { o.Deadline = d }
}

// WithTracer streams one span per verifier pass to t (in addition to the
// Report.Passes record Check always keeps). Pass nil to restore the
// default (no live stream).
func WithTracer(t obs.Tracer) Option {
	return func(o *Options, _ *checkExtras) { o.Tracer = t }
}

// WithProgress attaches a live progress counter: the sharded hot loops
// bump p once per chunk and reset it at pass boundaries, so a watcher
// goroutine (p.Watch) can render a live "pass X, N of M states" ticker.
func WithProgress(p *obs.Progress) Option {
	return func(o *Options, _ *checkExtras) { o.Progress = p }
}

// WithFaults makes Check compute the fault-span of the given fault
// actions from S and use it as the tolerance specification T (overriding
// the T argument): the paper's "smallest closed fault-span containing the
// invariant". This folds the old two-call FaultSpan + NewSpace dance into
// the single Check entry point.
func WithFaults(faults ...*program.Action) Option {
	return func(_ *Options, e *checkExtras) { e.faults = faults }
}

// WithMetrics makes Check run the quantitative tolerance-metrics passes
// after the verdict passes and attach a ToleranceMetrics to the report.
// Combine with WithConstraints for the per-constraint cost breakdown.
func WithMetrics() Option {
	return func(o *Options, _ *checkExtras) { o.Metrics = true }
}

// WithConstraints supplies the invariant conjuncts the metrics passes
// break recovery costs down by. It has no effect unless WithMetrics (or
// Options.Metrics) is also set.
func WithConstraints(specs ...ConstraintSpec) Option {
	return func(_ *Options, e *checkExtras) { e.constraints = specs }
}

// WithSpaceMode selects the state-space representation tier (DESIGN §13):
// SpaceAuto engages the full → quotient → spill ladder automatically as
// instances outgrow each tier; the explicit modes force one tier.
func WithSpaceMode(m SpaceMode) Option {
	return func(o *Options, _ *checkExtras) { o.SpaceMode = m }
}

// WithSymmetry supplies the canonicalization hook the quotient tier
// reduces the space by. Registry instances carry their advertised
// symmetry; hand-built programs can pass their own. Pass nil to clear.
func WithSymmetry(sym *Symmetry) Option {
	return func(o *Options, _ *checkExtras) { o.Symmetry = sym }
}

// WithQuotientMap selects the quotient tier's representative lookup
// structure: the 64-bit fingerprint table (default, collision-refusing)
// or the exact binary search.
func WithQuotientMap(m QuotientMap) Option {
	return func(o *Options, _ *checkExtras) { o.QuotientMap = m }
}

// WithSpillDir sets the directory the spill tier writes CSR segments and
// frontier runs into, and enables the spill rung of the SpaceAuto ladder.
func WithSpillDir(dir string) Option {
	return func(o *Options, _ *checkExtras) { o.SpillDir = dir }
}

// WithOptions replaces the whole Options struct — the bridge for callers
// holding a legacy Options value.
func WithOptions(o Options) Option {
	return func(dst *Options, _ *checkExtras) { *dst = o }
}

// buildOptions folds functional options into an Options + extras pair.
func buildOptions(options []Option) (Options, checkExtras) {
	var (
		o Options
		e checkExtras
	)
	for _, opt := range options {
		opt(&o, &e)
	}
	return o, e
}
