package verify

import (
	"fmt"
	"runtime"
	"time"

	"nonmask/internal/obs"
	"nonmask/internal/program"
)

// DefaultMaxStates bounds full-space enumeration. The packed bitsets and
// int32 successor tables keep per-state bookkeeping small enough that
// 1<<26 states costs a few hundred megabytes; the seed checker's []bool
// bookkeeping capped out at 1<<22.
const DefaultMaxStates = int64(1) << 26

// Options configures the checker. The zero value is ready to use: default
// state cap, one worker per CPU, projected preservation strategy, no
// deadline.
type Options struct {
	// MaxStates caps the size of the enumerated state space. Zero means
	// DefaultMaxStates (the zero-means-default convention used throughout
	// this package); negative values are rejected with an error by every
	// entry point rather than silently treated as the default.
	MaxStates int64
	// Workers is the number of goroutines sharding state enumeration and
	// the backward fixpoint passes. Zero means runtime.NumCPU(); one runs
	// every pass sequentially on the calling goroutine. Workers > 1
	// requires what the program model already promises: action guards,
	// bodies, and predicate Eval functions must be pure (no mutation of
	// shared state), since they are called concurrently.
	Workers int
	// Strategy selects how preservation facts are decided (Preserves,
	// CheckEstablishes). Zero means Projected.
	Strategy Strategy
	// Deadline, when positive, bounds the wall-clock time of a Check call;
	// it is applied as a context timeout on top of the caller's context.
	Deadline time.Duration
	// Tracer, when non-nil, receives one span per verifier pass (see the
	// Pass* constants and DESIGN §8). Check always collects spans onto
	// Report.Passes regardless; the tracer is the live event stream.
	// Implementations must be safe for concurrent use.
	Tracer obs.Tracer
	// Progress, when non-nil, is bumped by the sharded hot loops once per
	// work chunk and reset at pass boundaries; sample it from another
	// goroutine with Progress.Watch. Nil costs the loops one nil-check.
	Progress *obs.Progress
	// Metrics makes Check additionally run the quantitative
	// tolerance-metrics passes (distance profile, worst/expected
	// stabilization time, per-constraint recovery costs) and attach the
	// result to Report.Metrics. Off by default: the verdict path pays
	// nothing for the plumbing.
	Metrics bool
}

// validate rejects malformed options. Every entry point of this package
// calls it, so a negative MaxStates fails loudly instead of silently
// falling back to the default (the seed behaviour).
func (o Options) validate() error {
	if o.MaxStates < 0 {
		return fmt.Errorf("verify: negative MaxStates %d (use 0 for the default %d)",
			o.MaxStates, DefaultMaxStates)
	}
	if o.Workers < 0 {
		return fmt.Errorf("verify: negative Workers %d (use 0 for runtime.NumCPU)", o.Workers)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("verify: negative Deadline %v", o.Deadline)
	}
	return nil
}

func (o Options) maxStates() int64 {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.NumCPU()
	}
	return o.Workers
}

func (o Options) strategy() Strategy {
	if o.Strategy == 0 {
		return Projected
	}
	return o.Strategy
}

// Option is a functional option for Check, the package's unified entry
// point. Options compose left to right; later options win.
type Option func(*Options, *checkExtras)

// checkExtras holds Check-only configuration that does not belong on the
// Options struct shared with the legacy entry points.
type checkExtras struct {
	faults      []*program.Action
	constraints []ConstraintSpec
}

// WithWorkers shards enumeration and fixpoint passes across n goroutines.
// n == 1 forces the sequential path; n == 0 restores the default
// (runtime.NumCPU()).
func WithWorkers(n int) Option {
	return func(o *Options, _ *checkExtras) { o.Workers = n }
}

// WithMaxStates caps the enumerated state space at n states. n == 0
// restores the default (DefaultMaxStates); negative values make Check
// fail with an error.
func WithMaxStates(n int64) Option {
	return func(o *Options, _ *checkExtras) { o.MaxStates = n }
}

// WithStrategy selects the preservation-checking strategy recorded on the
// report's options (Exhaustive or Projected), for callers that feed the
// same option set into the theorem validators.
func WithStrategy(s Strategy) Option {
	return func(o *Options, _ *checkExtras) { o.Strategy = s }
}

// WithDeadline bounds the wall-clock time of the whole Check call. The
// deadline is implemented as a context timeout, so a Check that exceeds
// it returns context.DeadlineExceeded from whichever pass was running.
func WithDeadline(d time.Duration) Option {
	return func(o *Options, _ *checkExtras) { o.Deadline = d }
}

// WithTracer streams one span per verifier pass to t (in addition to the
// Report.Passes record Check always keeps). Pass nil to restore the
// default (no live stream).
func WithTracer(t obs.Tracer) Option {
	return func(o *Options, _ *checkExtras) { o.Tracer = t }
}

// WithProgress attaches a live progress counter: the sharded hot loops
// bump p once per chunk and reset it at pass boundaries, so a watcher
// goroutine (p.Watch) can render a live "pass X, N of M states" ticker.
func WithProgress(p *obs.Progress) Option {
	return func(o *Options, _ *checkExtras) { o.Progress = p }
}

// WithFaults makes Check compute the fault-span of the given fault
// actions from S and use it as the tolerance specification T (overriding
// the T argument): the paper's "smallest closed fault-span containing the
// invariant". This folds the old two-call FaultSpan + NewSpace dance into
// the single Check entry point.
func WithFaults(faults ...*program.Action) Option {
	return func(_ *Options, e *checkExtras) { e.faults = faults }
}

// WithMetrics makes Check run the quantitative tolerance-metrics passes
// after the verdict passes and attach a ToleranceMetrics to the report.
// Combine with WithConstraints for the per-constraint cost breakdown.
func WithMetrics() Option {
	return func(o *Options, _ *checkExtras) { o.Metrics = true }
}

// WithConstraints supplies the invariant conjuncts the metrics passes
// break recovery costs down by. It has no effect unless WithMetrics (or
// Options.Metrics) is also set.
func WithConstraints(specs ...ConstraintSpec) Option {
	return func(_ *Options, e *checkExtras) { e.constraints = specs }
}

// WithOptions replaces the whole Options struct — the bridge for callers
// holding a legacy Options value.
func WithOptions(o Options) Option {
	return func(dst *Options, _ *checkExtras) { *dst = o }
}

// buildOptions folds functional options into an Options + extras pair.
func buildOptions(options []Option) (Options, checkExtras) {
	var (
		o Options
		e checkExtras
	)
	for _, opt := range options {
		opt(&o, &e)
	}
	return o, e
}
