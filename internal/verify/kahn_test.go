package verify

// Cross-validation of the two arbitrary-daemon convergence deciders: the
// sharded backward fixpoint (checkConvergenceKahn, used when the successor
// table is built) and the sequential DFS (checkConvergenceDFS, the
// fallback when the table would not fit). Both are exact, so on every
// random transition system they must agree on the verdict and — when
// convergence holds — on the exact worst/mean step metrics.

import (
	"context"
	"math/rand"
	"testing"

	"nonmask/internal/program"
)

func TestKahnAgreesWithDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	ctx := context.Background()
	convergent, divergent := 0, 0
	for trial := 0; trial < 300; trial++ {
		p, S := randomProgram(rng, 2, 2, 2+rng.Intn(2))
		sp, err := NewSpaceContext(ctx, p, S, program.True(), Options{Workers: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatalf("trial %d: NewSpaceContext: %v", trial, err)
		}
		if sp.idx == nil {
			t.Fatalf("trial %d: tiny space built no successor index", trial)
		}
		kahn, _, err := sp.checkConvergenceKahn(ctx)
		if err != nil {
			t.Fatalf("trial %d: kahn: %v", trial, err)
		}
		dfs, err := sp.checkConvergenceDFS(ctx)
		if err != nil {
			t.Fatalf("trial %d: dfs: %v", trial, err)
		}
		if kahn.Converges != dfs.Converges {
			t.Fatalf("trial %d: kahn Converges=%v, dfs Converges=%v",
				trial, kahn.Converges, dfs.Converges)
		}
		if kahn.StatesT != dfs.StatesT || kahn.StatesS != dfs.StatesS ||
			kahn.StatesOutsideS != dfs.StatesOutsideS {
			t.Fatalf("trial %d: state counts differ: kahn %+v, dfs %+v", trial, kahn, dfs)
		}
		if kahn.Converges {
			convergent++
			if kahn.WorstSteps != dfs.WorstSteps {
				t.Fatalf("trial %d: WorstSteps kahn=%d dfs=%d",
					trial, kahn.WorstSteps, dfs.WorstSteps)
			}
			if kahn.MeanSteps != dfs.MeanSteps {
				t.Fatalf("trial %d: MeanSteps kahn=%v dfs=%v",
					trial, kahn.MeanSteps, dfs.MeanSteps)
			}
			continue
		}
		divergent++
		// The algorithms may surface different witness categories (the DFS
		// reports the first failure in search order; the fixpoint reports
		// escape > deadlock > cycle), but each reported witness must be
		// valid on its own terms.
		validateConvergenceWitness(t, trial, sp, kahn)
		validateConvergenceWitness(t, trial, sp, dfs)
	}
	if convergent == 0 || divergent == 0 {
		t.Errorf("unbalanced sample: %d convergent, %d divergent; cross-check weak",
			convergent, divergent)
	}
}

// validateConvergenceWitness checks a non-convergence witness against the
// model directly, independent of either decider's internals.
func validateConvergenceWitness(t *testing.T, trial int, sp *Space, res *ConvergenceResult) {
	t.Helper()
	switch {
	case res.Deadlock != nil:
		st := res.Deadlock
		if sp.S.Holds(st) || !sp.T.Holds(st) {
			t.Fatalf("trial %d: deadlock witness %s not in T∧¬S", trial, st)
		}
		for _, a := range sp.P.Actions {
			if a.Enabled(st) {
				t.Fatalf("trial %d: deadlock witness %s has enabled action %s",
					trial, st, a.Name)
			}
		}
	case len(res.Cycle) > 0:
		// Every cycle state is in the region and each step of the cycle is
		// one action application.
		for _, st := range res.Cycle {
			if sp.S.Holds(st) || !sp.T.Holds(st) {
				t.Fatalf("trial %d: cycle state %s not in T∧¬S", trial, st)
			}
		}
		for i, st := range res.Cycle {
			next := res.Cycle[(i+1)%len(res.Cycle)]
			if !someActionLeads(sp, st, next) {
				t.Fatalf("trial %d: no action leads %s -> %s in claimed cycle",
					trial, st, next)
			}
		}
	case res.Escape != nil:
		if !sp.T.Holds(res.Escape.State) {
			t.Fatalf("trial %d: escape source %s outside T", trial, res.Escape.State)
		}
		if sp.T.Holds(res.Escape.Next) {
			t.Fatalf("trial %d: escape target %s still in T", trial, res.Escape.Next)
		}
	default:
		t.Fatalf("trial %d: non-convergence without witness", trial)
	}
}

func someActionLeads(sp *Space, from, to *program.State) bool {
	want := sp.P.Schema.Index(to)
	for _, a := range sp.P.Actions {
		if a.Enabled(from) && sp.P.Schema.Index(a.Apply(from)) == want {
			return true
		}
	}
	return false
}
