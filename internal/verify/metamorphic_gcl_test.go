// Metamorphic tests of the CSR successor index: whether the index is
// materialized (the default), forced off (a budget too small for any
// edge array), or consumed by different worker counts is a pure
// performance choice — every verdict, witness, and step metric on every
// checked-in GCL model must be bit-identical across all of them.
package verify_test

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"nonmask/internal/gcl"
	"nonmask/internal/verify"
)

// gclModels compiles every testdata/*.gcl model at the repo root.
func gclModels(t *testing.T) map[string]*gcl.Module {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.gcl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no testdata/*.gcl models found")
	}
	models := make(map[string]*gcl.Module, len(paths))
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		file, err := gcl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", path, err)
		}
		m, err := gcl.Compile(file)
		if err != nil {
			t.Fatalf("%s: compile: %v", path, err)
		}
		models[filepath.Base(path)] = m
	}
	return models
}

// TestSuccIndexMetamorphic cross-runs every GCL model through the CSR
// path and the on-the-fly fallback (forced by a tiny index budget),
// across worker counts {1, 4, NumCPU}, and requires observationally
// identical reports: verdicts, witnesses, WorstSteps, MeanSteps.
func TestSuccIndexMetamorphic(t *testing.T) {
	ctx := context.Background()
	for name, m := range gclModels(t) {
		t.Run(name, func(t *testing.T) {
			base, err := verify.Check(ctx, m.Program, m.S, m.T, verify.WithWorkers(1))
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if !base.Space.HasSuccIndex() {
				t.Fatal("baseline did not build the CSR index on a tiny model")
			}

			// Same engine, more workers.
			for _, w := range []int{4, runtime.NumCPU()} {
				rep, err := verify.Check(ctx, m.Program, m.S, m.T, verify.WithWorkers(w))
				if err != nil {
					t.Fatalf("Workers=%d: %v", w, err)
				}
				compareReports(t, base, rep)
			}

			// Forced fallback: a 1-byte budget rejects every index, so the
			// passes re-derive successors on the fly.
			restore := verify.SetSuccIndexBudget(1)
			defer restore()
			for _, w := range []int{1, 4} {
				rep, err := verify.Check(ctx, m.Program, m.S, m.T, verify.WithWorkers(w))
				if err != nil {
					t.Fatalf("fallback Workers=%d: %v", w, err)
				}
				if rep.Space.HasSuccIndex() {
					t.Fatalf("fallback Workers=%d still built an index under a 1-byte budget", w)
				}
				compareReports(t, base, rep)
			}
		})
	}
}
