package verify

// Metatheorem tests: randomized cross-validation of the checker against
// itself. Random transition systems are generated as guard/body lookup
// tables, and structural theorems that must hold for every program are
// checked on each:
//
//	(1) convergence under the arbitrary daemon implies convergence under
//	    the weakly fair daemon (the fair daemon's schedules are a subset);
//	(2) when arbitrary-daemon convergence holds, the WorstDistances table
//	    is a valid variant function;
//	(3) projected preservation agrees with exhaustive preservation for
//	    honest footprints;
//	(4) a computed fault-span contains its initial region and is closed.

import (
	"context"
	"math/rand"
	"testing"

	"nonmask/internal/program"
)

// randomProgram builds a program over nVars variables of domain 0..domMax
// with nActions random table-driven actions (reads = writes = all
// variables, so footprints are trivially honest).
func randomProgram(rng *rand.Rand, nVars int, domMax int32, nActions int) (*program.Program, *program.Predicate) {
	s := program.NewSchema()
	vars := make([]program.VarID, nVars)
	for i := range vars {
		vars[i] = s.MustDeclare(string(rune('a'+i)), program.IntRange(0, domMax))
	}
	count, _ := s.StateCount()
	p := program.New("random", s)
	for a := 0; a < nActions; a++ {
		guardTable := make([]bool, count)
		bodyTable := make([]int64, count)
		for i := int64(0); i < count; i++ {
			guardTable[i] = rng.Intn(3) != 0 // enabled ~2/3 of states
			bodyTable[i] = rng.Int63n(count)
		}
		p.Add(program.NewAction(
			string(rune('A'+a)), program.Closure, vars, vars,
			func(st *program.State) bool { return guardTable[s.Index(st)] },
			func(st *program.State) {
				target := s.StateAt(bodyTable[s.Index(st)])
				for _, v := range vars {
					st.Set(v, target.Get(v))
				}
			}))
	}
	// S: a random nonempty strict subset of states.
	inS := make([]bool, count)
	for i := range inS {
		inS[i] = rng.Intn(4) == 0
	}
	inS[rng.Int63n(count)] = true
	S := program.NewPredicate("S", vars, func(st *program.State) bool {
		return inS[s.Index(st)]
	})
	return p, S
}

func TestMetaUnfairImpliesFair(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	checkedConvergent := 0
	for trial := 0; trial < 300; trial++ {
		p, S := randomProgram(rng, 2, 2, 2+rng.Intn(2))
		sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
		if err != nil {
			t.Fatalf("NewSpace: %v", err)
		}
		unfair := sp.CheckConvergence()
		fair := sp.CheckFairConvergence()
		if unfair.Converges {
			checkedConvergent++
			if !fair.Converges {
				t.Fatalf("trial %d: unfair convergence without fair convergence", trial)
			}
		}
		// Deadlocks are daemon-independent: both checks must agree on them.
		if (unfair.Deadlock != nil) != (fair.Deadlock != nil) {
			// A deadlock found by one may be masked by an earlier cycle in
			// the other's search order; only assert one-way: a fair-check
			// deadlock must also fail the unfair check.
			if fair.Deadlock != nil && unfair.Converges {
				t.Fatalf("trial %d: fair deadlock but unfair convergence", trial)
			}
		}
	}
	if checkedConvergent == 0 {
		t.Error("no random program was convergent; metatheorem untested")
	}
}

func TestMetaWorstDistancesIsVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		p, S := randomProgram(rng, 2, 2, 2)
		sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
		if err != nil {
			t.Fatalf("NewSpace: %v", err)
		}
		dist, ok := sp.WorstDistances()
		if !ok {
			continue
		}
		checked++
		if v := sp.CheckVariant(func(st *program.State) int64 {
			return int64(dist[p.Schema.Index(st)])
		}); v != nil {
			t.Fatalf("trial %d: WorstDistances rejected as variant: %v", trial, v)
		}
	}
	if checked == 0 {
		t.Error("no convergent random program; metatheorem untested")
	}
}

func TestMetaProjectedEqualsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 150; trial++ {
		// Structured program: 4 variables; an action over a 2-variable
		// footprint and a constraint over a (possibly different)
		// 2-variable support.
		s := program.NewSchema()
		vars := make([]program.VarID, 4)
		for i := range vars {
			vars[i] = s.MustDeclare(string(rune('a'+i)), program.IntRange(0, 2))
		}
		av1, av2 := vars[rng.Intn(4)], vars[rng.Intn(4)]
		footprint := program.SortVarIDs([]program.VarID{av1, av2})
		// Table over the footprint's projected space (3*3 or 3).
		psize := 3
		if len(footprint) == 2 {
			psize = 9
		}
		guardTable := make([]bool, psize)
		bodyTable := make([]int32, psize)
		for i := range guardTable {
			guardTable[i] = rng.Intn(2) == 0
			bodyTable[i] = int32(rng.Intn(3))
		}
		proj := func(st *program.State) int {
			idx := 0
			for _, v := range footprint {
				idx = idx*3 + int(st.Get(v))
			}
			return idx
		}
		target := footprint[rng.Intn(len(footprint))]
		act := program.NewAction("act", program.Convergence,
			footprint, []program.VarID{target},
			func(st *program.State) bool { return guardTable[proj(st)] },
			func(st *program.State) { st.Set(target, bodyTable[proj(st)]) })

		cv1, cv2 := vars[rng.Intn(4)], vars[rng.Intn(4)]
		support := program.SortVarIDs([]program.VarID{cv1, cv2})
		csize := 3
		if len(support) == 2 {
			csize = 9
		}
		predTable := make([]bool, csize)
		for i := range predTable {
			predTable[i] = rng.Intn(2) == 0
		}
		cproj := func(st *program.State) int {
			idx := 0
			for _, v := range support {
				idx = idx*3 + int(st.Get(v))
			}
			return idx
		}
		pred := program.NewPredicate("c", support, func(st *program.State) bool {
			return predTable[cproj(st)]
		})

		ex, err := CheckPreservesContext(context.Background(), s, act, pred, nil, Options{})
		if err != nil {
			t.Fatalf("exhaustive: %v", err)
		}
		pr, err := CheckPreservesProjectedContext(context.Background(), s, act, pred, nil, Options{})
		if err != nil {
			t.Fatalf("projected: %v", err)
		}
		if ex.Preserves != pr.Preserves {
			t.Fatalf("trial %d: exhaustive=%v projected=%v", trial, ex.Preserves, pr.Preserves)
		}
	}
}

func TestMetaFaultSpanClosedAndContainsInit(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 100; trial++ {
		p, S := randomProgram(rng, 2, 2, 2)
		// One random fault action.
		faults := []*program.Action{program.NewAction("f", program.Fault,
			nil, []program.VarID{0},
			func(st *program.State) bool { return true },
			func(st *program.State) { st.Set(0, (st.Get(0)+1)%3) })}
		res, err := FaultSpanContext(context.Background(), p, faults, S, Options{})
		if err != nil {
			t.Fatalf("FaultSpan: %v", err)
		}
		count, _ := p.Schema.StateCount()
		for i := int64(0); i < count; i++ {
			st := p.Schema.StateAt(i)
			if S.Holds(st) && !res.Span.Holds(st) {
				t.Fatalf("trial %d: span misses init state %s", trial, st)
			}
			if !res.Span.Holds(st) {
				continue
			}
			// Closure under program + fault actions.
			for _, a := range append(append([]*program.Action{}, p.Actions...), faults...) {
				if a.Guard(st) && !res.Span.Holds(a.Apply(st)) {
					t.Fatalf("trial %d: span not closed under %s at %s", trial, a.Name, st)
				}
			}
		}
	}
}
