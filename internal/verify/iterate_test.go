package verify_test

import (
	"context"
	"testing"

	"nonmask/internal/program"
	"nonmask/internal/protocols/registry"
	"nonmask/internal/verify"
)

// TestSuccCursorAgreesWithGraph drives the exported schedule-constrained
// iteration over every state of a catalog instance, on both the CSR path
// and the forced fallback, and requires identical (action, successor)
// sequences — and that each reported edge is what the action's own
// guard/apply semantics produce.
func TestSuccCursorAgreesWithGraph(t *testing.T) {
	inst, err := registry.Build("tokenring-ring", registry.Params{N: 3, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	type edge struct {
		name string
		j    int64
	}
	collect := func(sp *verify.Space) [][]edge {
		out := make([][]edge, sp.Count)
		cur := sp.NewSuccCursor()
		for i := int64(0); i < sp.Count; i++ {
			cur.ForEach(i, func(a *program.Action, j int64) bool {
				out[i] = append(out[i], edge{a.Name, j})
				return true
			})
		}
		return out
	}
	verifyEdges := func(sp *verify.Space, edges [][]edge) {
		for i := int64(0); i < sp.Count; i++ {
			st := sp.State(i)
			n := 0
			for _, a := range sp.P.Actions {
				if !a.Guard(st) {
					continue
				}
				want := sp.P.Schema.Index(a.Apply(st))
				if n >= len(edges[i]) || edges[i][n].name != a.Name || edges[i][n].j != want {
					t.Fatalf("state %d edge %d: got %v, want (%s, %d)", i, n, edges[i], a.Name, want)
				}
				n++
			}
			if n != len(edges[i]) {
				t.Fatalf("state %d: cursor reported %d edges, guards enable %d", i, len(edges[i]), n)
			}
		}
	}

	ctx := context.Background()
	sp, err := verify.NewSpaceContext(ctx, inst.Program, inst.S, program.True(), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sp.HasSuccIndex() {
		t.Fatal("expected the CSR index on the baseline space")
	}
	csr := collect(sp)
	verifyEdges(sp, csr)

	restore := verify.SetSuccIndexBudget(1)
	defer restore()
	fb, err := verify.NewSpaceContext(ctx, inst.Program, inst.S, program.True(), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fb.HasSuccIndex() {
		t.Fatal("tiny budget should force the fallback")
	}
	fallback := collect(fb)
	for i := range csr {
		if len(csr[i]) != len(fallback[i]) {
			t.Fatalf("state %d: CSR has %d edges, fallback %d", i, len(csr[i]), len(fallback[i]))
		}
		for n := range csr[i] {
			if csr[i][n] != fallback[i][n] {
				t.Fatalf("state %d edge %d: CSR %v != fallback %v", i, n, csr[i][n], fallback[i][n])
			}
		}
	}

	// ForEach must stop when fn returns false.
	stops := 0
	sp.NewSuccCursor().ForEach(0, func(*program.Action, int64) bool {
		stops++
		return false
	})
	if stops > 1 {
		t.Fatalf("ForEach continued %d edges past a false return", stops)
	}
}
