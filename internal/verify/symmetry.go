package verify

import (
	"context"
	"fmt"
	"sort"

	"nonmask/internal/program"
)

// Symmetry is a per-protocol canonicalization hook: the handle by which a
// program advertises a symmetry group of its state space (DESIGN §13).
// The quotient tier (SpaceQuotient, or the SpaceAuto ladder once the full
// CSR busts its budget) runs enumeration, the CSR build, and every pass
// on the orbit representatives alone — worth a factor of the group order
// in states and edges.
//
// The contract Canonicalize must honour, for the quotient verdicts and
// metrics to equal the full space's:
//
//	totality:     it maps every state of the schema to a state of the
//	              schema (in place, no allocation required);
//	idempotence:  canon(canon(u)) = canon(u);
//	equivalence:  canon(u) = canon(v) exactly when u and v lie in one
//	              orbit of a group of program automorphisms — bijections
//	              of the state space that map each action's transitions
//	              onto transitions (multiplicities preserved) and leave
//	              the checked predicates (S, T, constraints, leads-to
//	              operands) invariant.
//
// ValidateSymmetry checks all of this exhaustively on enumerable
// instances; the registry's advertisement tests run it on every symmetric
// protocol family, and the metamorphic suites additionally pin
// full-vs-quotient bit-identity of whole reports. A hook that violates
// the contract is caught at space construction when it breaks idempotence
// (a canonical image that is not itself canonical is a hard error) —
// semantic violations beyond that are the advertiser's responsibility.
//
// Canonicalize is called concurrently from every sharded pass and must be
// safe for concurrent use on distinct states (pure apart from mutating
// its argument).
type Symmetry struct {
	// Name identifies the group in reports, traces and cache keys
	// (e.g. "value-rotation(9)", "subtree-iso").
	Name string
	// Canonicalize rewrites st, in place, to its orbit's representative.
	Canonicalize func(st *program.State)
}

// IdentitySymmetry is the trivial group: every orbit a singleton, the
// quotient space the full space. It exists so the quotient machinery —
// the fingerprint map in particular — can run (and be cross-checked) on
// programs with no exploitable symmetry; the metamorphic suites use it to
// prove exact-map-vs-fingerprint agreement on arbitrary programs.
func IdentitySymmetry() *Symmetry {
	return &Symmetry{Name: "identity", Canonicalize: func(*program.State) {}}
}

// ValidateSymmetry exhaustively checks sym's contract against p on the
// full state space: canonicalization must stay inside the schema's
// domains, be idempotent, leave every predicate in preds invariant, and
// commute with the transition relation (the canonical successors of u and
// of canon(u) must agree as multisets). The cost is O(states × actions),
// so call it on small instances — the registry's symmetry tests do — and
// trust the group structure for the large ones.
func ValidateSymmetry(ctx context.Context, p *program.Program, sym *Symmetry, preds ...*program.Predicate) error {
	if sym == nil || sym.Canonicalize == nil {
		return fmt.Errorf("verify: nil symmetry")
	}
	count, ok := p.Schema.StateCount()
	if !ok {
		return fmt.Errorf("verify: state space of %q not enumerable", p.Name)
	}
	st := p.Schema.NewState()
	cn := p.Schema.NewState()
	tmp := p.Schema.NewState()
	canonIndex := func(i int64, dst *program.State) int64 {
		p.Schema.StateInto(i, dst)
		sym.Canonicalize(dst)
		return p.Schema.Index(dst)
	}
	// canonSuccs collects the canonical successor multiset of state index
	// i, sorted for multiset comparison.
	canonSuccs := func(i int64, buf []int64) []int64 {
		p.Schema.StateInto(i, st)
		buf = buf[:0]
		for _, a := range p.Actions {
			if !a.Guard(st) {
				continue
			}
			a.ApplyInto(st, tmp)
			sym.Canonicalize(tmp)
			buf = append(buf, p.Schema.Index(tmp))
		}
		sort.Slice(buf, func(x, y int) bool { return buf[x] < buf[y] })
		return buf
	}
	var uSucc, cSucc []int64
	for i := int64(0); i < count; i++ {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		ci := canonIndex(i, cn)
		if cci := canonIndex(ci, tmp); cci != ci {
			return fmt.Errorf("verify: symmetry %q not idempotent: canon(%s) = %s is not canonical",
				sym.Name, p.Schema.StateAt(i), p.Schema.StateAt(ci))
		}
		p.Schema.StateInto(i, st)
		for _, pred := range preds {
			if pred == nil || pred.IsConstTrue() {
				continue
			}
			p.Schema.StateInto(ci, cn)
			if pred.Eval(st) != pred.Eval(cn) {
				return fmt.Errorf("verify: symmetry %q does not preserve predicate %q at %s (orbit rep %s)",
					sym.Name, pred.Name, p.Schema.StateAt(i), p.Schema.StateAt(ci))
			}
		}
		uSucc = canonSuccs(i, uSucc)
		cSucc = canonSuccs(ci, cSucc)
		if len(uSucc) != len(cSucc) {
			return fmt.Errorf("verify: symmetry %q is not a program automorphism at %s: %d enabled actions vs %d at rep %s",
				sym.Name, p.Schema.StateAt(i), len(uSucc), len(cSucc), p.Schema.StateAt(ci))
		}
		for k := range uSucc {
			if uSucc[k] != cSucc[k] {
				return fmt.Errorf("verify: symmetry %q is not a program automorphism: successor orbits of %s and its rep %s differ",
					sym.Name, p.Schema.StateAt(i), p.Schema.StateAt(ci))
			}
		}
	}
	return nil
}
