package verify

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"nonmask/internal/program"
)

// tinyProgram is a two-variable convergent system: each action lowers one
// variable toward zero; S is "both zero".
func tinyProgram(t *testing.T) (*program.Program, *program.Predicate) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 3))
	y := s.MustDeclare("y", program.IntRange(0, 3))
	p := program.New("tiny", s)
	p.Add(program.NewAction("decX", program.Convergence,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) > 0 },
		func(st *program.State) { st.Set(x, st.Get(x)-1) }))
	p.Add(program.NewAction("decY", program.Convergence,
		[]program.VarID{y}, []program.VarID{y},
		func(st *program.State) bool { return st.Get(y) > 0 },
		func(st *program.State) { st.Set(y, st.Get(y)-1) }))
	S := program.NewPredicate("S", []program.VarID{x, y},
		func(st *program.State) bool { return st.Get(x) == 0 && st.Get(y) == 0 })
	return p, S
}

func TestNegativeMaxStatesRejected(t *testing.T) {
	p, S := tinyProgram(t)
	bad := Options{MaxStates: -1}
	ctx := context.Background()

	if _, err := NewSpaceContext(ctx, p, S, program.True(), bad); err == nil ||
		!strings.Contains(err.Error(), "negative MaxStates") {
		t.Fatalf("NewSpaceContext: err = %v, want negative-MaxStates error", err)
	}
	if _, err := Check(ctx, p, S, nil, WithMaxStates(-1)); err == nil ||
		!strings.Contains(err.Error(), "negative MaxStates") {
		t.Fatalf("Check: err = %v, want negative-MaxStates error", err)
	}
	if _, err := CheckPreservesContext(ctx, p.Schema, p.Actions[0], S, nil, bad); err == nil ||
		!strings.Contains(err.Error(), "negative MaxStates") {
		t.Fatalf("CheckPreservesContext: err = %v, want negative-MaxStates error", err)
	}
	if _, err := FaultSpanContext(ctx, p, nil, S, bad); err == nil ||
		!strings.Contains(err.Error(), "negative MaxStates") {
		t.Fatalf("FaultSpanContext: err = %v, want negative-MaxStates error", err)
	}
}

func TestNegativeWorkersRejected(t *testing.T) {
	p, S := tinyProgram(t)
	if _, err := Check(context.Background(), p, S, nil, WithWorkers(-2)); err == nil ||
		!strings.Contains(err.Error(), "negative Workers") {
		t.Fatalf("Check: err = %v, want negative-Workers error", err)
	}
}

// TestZeroMeansDefault pins the zero-value convention: MaxStates 0 gets the
// documented default, and the report records the resolved values.
func TestZeroMeansDefault(t *testing.T) {
	p, S := tinyProgram(t)
	rep, err := Check(context.Background(), p, S, nil, WithWorkers(1))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Options.MaxStates != DefaultMaxStates {
		t.Errorf("report MaxStates = %d, want default %d", rep.Options.MaxStates, DefaultMaxStates)
	}
	if rep.Options.Workers != 1 {
		t.Errorf("report Workers = %d, want 1", rep.Options.Workers)
	}
	if !rep.Unfair.Converges || !rep.Tolerant() {
		t.Errorf("tiny program should converge: %s", rep.Summary())
	}
	if rep.Unfair.WorstSteps != 6 {
		// Worst case: both variables at 3 → six decrements.
		t.Errorf("WorstSteps = %d, want 6", rep.Unfair.WorstSteps)
	}
}

func TestCheckCancelled(t *testing.T) {
	p, S := tinyProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Check(ctx, p, S, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestCheckDeadline(t *testing.T) {
	p, S := tinyProgram(t)
	// A deadline that has effectively already passed must surface as
	// DeadlineExceeded from whichever pass was running.
	if _, err := Check(context.Background(), p, S, nil, WithDeadline(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Check with 1ns deadline: err = %v, want context.DeadlineExceeded", err)
	}
	// A generous deadline changes nothing.
	rep, err := Check(context.Background(), p, S, nil, WithDeadline(time.Minute))
	if err != nil {
		t.Fatalf("Check with 1m deadline: %v", err)
	}
	if !rep.Unfair.Converges {
		t.Fatal("tiny program should converge under a generous deadline")
	}
}

// TestPerPassMatchesCheck pins the compatibility contract: the per-pass
// Space methods answer exactly like the unified Check entry point.
func TestPerPassMatchesCheck(t *testing.T) {
	p, S := tinyProgram(t)
	sp, err := NewSpaceContext(context.Background(), p, S, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpaceContext: %v", err)
	}
	res := sp.CheckConvergence()
	rep, err := Check(context.Background(), p, S, nil)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Converges != rep.Unfair.Converges ||
		res.WorstSteps != rep.Unfair.WorstSteps ||
		res.MeanSteps != rep.Unfair.MeanSteps {
		t.Fatalf("wrapper/Check mismatch: %+v vs %+v", res, rep.Unfair)
	}
}
