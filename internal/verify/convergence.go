package verify

import (
	"fmt"

	"nonmask/internal/program"
)

// ConvergenceResult reports whether every computation from T reaches S, and
// if not, why. When convergence holds under the arbitrary daemon, the
// result carries exact worst-case step counts (the paper's variant-function
// bound, computed rather than exhibited by hand — Section 8 discusses how
// the method "simplifies the problem of exhibiting variant functions").
type ConvergenceResult struct {
	// Converges reports whether every computation starting in T reaches S.
	Converges bool
	// Fair reports which daemon the verdict is for: true for the weakly
	// fair daemon of the paper's computation model, false for the arbitrary
	// (unfair) daemon of the Section 8 remark.
	Fair bool

	// Deadlock, when non-nil, is a T∧¬S state with no enabled action —
	// a finite maximal computation that never reaches S.
	Deadlock *program.State
	// Cycle, when non-empty, is a set of T∧¬S states among which a
	// computation (fair, if Fair) can circulate forever.
	Cycle []*program.State
	// Escape, when non-nil, reports a T∧¬S state from which some action
	// leads outside T — a closure failure surfacing during convergence
	// exploration.
	Escape *ClosureViolation

	// WorstSteps is the maximum, over T∧¬S states, of the longest
	// action sequence a daemon can stretch before S holds. Valid only when
	// Converges under the arbitrary daemon (Fair == false).
	WorstSteps int
	// MeanSteps is the mean of that per-state worst case over all T∧¬S
	// states, or 0 when there are none.
	MeanSteps float64
	// StatesT and StatesS count the states satisfying T and S.
	StatesT, StatesS int64
	// StatesOutsideS counts T∧¬S states (the convergence region).
	StatesOutsideS int64
}

// Summary renders a one-line verdict.
func (r *ConvergenceResult) Summary() string {
	daemon := "arbitrary daemon"
	if r.Fair {
		daemon = "weakly fair daemon"
	}
	if !r.Converges {
		why := "livelock"
		switch {
		case r.Deadlock != nil:
			why = fmt.Sprintf("deadlock at %s", r.Deadlock)
		case r.Escape != nil:
			why = r.Escape.Error()
		case len(r.Cycle) > 0:
			why = fmt.Sprintf("cycle through %d states, e.g. %s", len(r.Cycle), r.Cycle[0])
		}
		return fmt.Sprintf("does NOT converge under %s: %s", daemon, why)
	}
	if r.Fair {
		return fmt.Sprintf("converges under %s (|T∧¬S| = %d states)", daemon, r.StatesOutsideS)
	}
	return fmt.Sprintf("converges under %s: worst %d steps, mean %.2f (|T∧¬S| = %d states)",
		daemon, r.WorstSteps, r.MeanSteps, r.StatesOutsideS)
}

// stateColors for the iterative DFS in checkUnfair.
const (
	colorWhite uint8 = iota
	colorGray
	colorBlack
)

// CheckConvergence decides convergence from T to S under the arbitrary
// (unfair) central daemon: it holds iff the transition graph restricted to
// T∧¬S has no cycles and no terminal states, and no transition escapes T.
// This is the strongest form — it implies convergence under every daemon.
func (sp *Space) CheckConvergence() *ConvergenceResult {
	res := &ConvergenceResult{Converges: true, StatesT: sp.CountT(), StatesS: sp.CountS()}
	res.StatesOutsideS = res.StatesT - countBoth(sp.inT, sp.inS)

	// steps[i]: worst-case number of actions to reach S from i, computed
	// during the DFS postorder. -1 = unvisited.
	steps := make([]int32, sp.Count)
	color := make([]uint8, sp.Count)
	parent := make([]int64, sp.Count)
	for i := range parent {
		parent[i] = -1
	}

	var succBuf []int64
	type frame struct {
		i    int64
		succ []int64
		pos  int
	}
	var stack []frame

	for start := int64(0); start < sp.Count; start++ {
		if !sp.inT[start] || sp.inS[start] || color[start] != colorWhite {
			continue
		}
		color[start] = colorGray
		stack = append(stack[:0], frame{i: start, succ: sp.successorsChecked(start, res, &succBuf)})
		if !res.Converges {
			return res
		}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.pos == 0 && len(f.succ) == 0 {
				// Terminal T∧¬S state: maximal finite computation outside S.
				res.Converges = false
				res.Deadlock = sp.State(f.i)
				return res
			}
			if f.pos < len(f.succ) {
				j := f.succ[f.pos]
				f.pos++
				if sp.inS[j] {
					if steps[f.i] < 1 {
						steps[f.i] = 1
					}
					continue
				}
				switch color[j] {
				case colorWhite:
					color[j] = colorGray
					parent[j] = f.i
					succs := sp.successorsChecked(j, res, &succBuf)
					if !res.Converges {
						return res
					}
					// The append may reallocate; f is re-fetched at loop top.
					stack = append(stack, frame{i: j, succ: succs})
				case colorGray:
					// Cycle within T∧¬S: an unfair daemon loops forever.
					res.Converges = false
					res.Cycle = sp.reconstructCycle(parent, f.i, j)
					return res
				case colorBlack:
					if d := steps[j] + 1; d > steps[f.i] {
						steps[f.i] = d
					}
				}
				continue
			}
			color[f.i] = colorBlack
			done := *f
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if d := steps[done.i] + 1; d > steps[p.i] {
					steps[p.i] = d
				}
			}
		}
	}

	// Aggregate the exact worst-case metric.
	var sum float64
	var n int64
	for i := int64(0); i < sp.Count; i++ {
		if sp.inT[i] && !sp.inS[i] {
			if int(steps[i]) > res.WorstSteps {
				res.WorstSteps = int(steps[i])
			}
			sum += float64(steps[i])
			n++
		}
	}
	if n > 0 {
		res.MeanSteps = sum / float64(n)
	}
	return res
}

// successorsChecked computes the successors of T∧¬S state i, copying them
// into a fresh slice (the DFS keeps them on its stack), and records a
// closure escape in res if a successor leaves T.
func (sp *Space) successorsChecked(i int64, res *ConvergenceResult, buf *[]int64) []int64 {
	*buf = sp.successors(i, sp.P.Actions, *buf)
	out := make([]int64, 0, len(*buf))
	for k, j := range *buf {
		if !sp.inT[j] {
			st := sp.State(i)
			var act *program.Action
			// Recover which action produced successor k.
			n := 0
			for _, a := range sp.P.Actions {
				if a.Guard(st) {
					if n == k {
						act = a
						break
					}
					n++
				}
			}
			res.Converges = false
			res.Escape = &ClosureViolation{Pred: sp.T, State: st, Action: act, Next: sp.State(j)}
			return nil
		}
		out = append(out, j)
	}
	return out
}

// reconstructCycle walks parent links from `from` back to `to` and returns
// the cycle's states in forward order, closing with the back edge from→to.
func (sp *Space) reconstructCycle(parent []int64, from, to int64) []*program.State {
	var idxs []int64
	for v := from; v != to; v = parent[v] {
		idxs = append(idxs, v)
		if parent[v] < 0 {
			break
		}
	}
	idxs = append(idxs, to)
	// Reverse into forward order (to ... from).
	out := make([]*program.State, len(idxs))
	for i, j := range idxs {
		out[len(idxs)-1-i] = sp.State(j)
	}
	return out
}

func countBoth(a, b []bool) int64 {
	var n int64
	for i := range a {
		if a[i] && b[i] {
			n++
		}
	}
	return n
}

// CheckFairConvergence decides convergence from T to S under the weakly
// fair daemon of the paper's computation model (Section 2: "each action in
// the set that is continuously enabled along the sequence is eventually
// executed").
//
// An infinite computation confined to T∧¬S eventually stays within one
// strongly connected component C of the T∧¬S transition graph. Such a
// confined computation can be weakly fair iff every action enabled at all
// states of C has some transition that stays inside C; otherwise that
// action is continuously enabled but firing it leaves C, so no fair
// computation remains in C. Convergence therefore fails iff some T∧¬S
// state is terminal, some transition escapes T, or some SCC admits a fair
// cycle by this criterion.
func (sp *Space) CheckFairConvergence() *ConvergenceResult {
	res := &ConvergenceResult{Converges: true, Fair: true, StatesT: sp.CountT(), StatesS: sp.CountS()}
	res.StatesOutsideS = res.StatesT - countBoth(sp.inT, sp.inS)

	// Collect the T∧¬S region.
	region := make([]int64, 0)
	inRegion := make(map[int64]int) // state index -> dense id
	for i := int64(0); i < sp.Count; i++ {
		if sp.inT[i] && !sp.inS[i] {
			inRegion[i] = len(region)
			region = append(region, i)
		}
	}
	if len(region) == 0 {
		return res
	}

	// Build the region's transition graph with edges labeled by action
	// index; check deadlock and escape along the way.
	adj := make([][]regionEdge, len(region))
	for id, i := range region {
		st := sp.State(i)
		any := false
		for ai, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			any = true
			j := sp.P.Schema.Index(a.Apply(st))
			if !sp.inT[j] {
				res.Converges = false
				res.Escape = &ClosureViolation{Pred: sp.T, State: st, Action: a, Next: sp.State(j)}
				return res
			}
			if sp.inS[j] {
				continue
			}
			adj[id] = append(adj[id], regionEdge{to: inRegion[j], action: ai})
		}
		if !any {
			res.Converges = false
			res.Deadlock = st
			return res
		}
	}

	// Tarjan SCC over the dense region graph (iterative).
	comps := denseSCCs(adj)

	for _, comp := range comps {
		// Does comp contain any internal edge at all?
		inComp := make(map[int]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		hasInternal := false
		internalAction := make(map[int]bool)
		for _, v := range comp {
			for _, e := range adj[v] {
				if inComp[e.to] {
					hasInternal = true
					internalAction[e.action] = true
				}
			}
		}
		if !hasInternal {
			continue // trivial SCC without self-loop: no infinite stay
		}
		// A∞: actions enabled at every state of the component.
		fairCycle := true
		for ai, a := range sp.P.Actions {
			everywhere := true
			for _, v := range comp {
				if !a.Guard(sp.State(region[v])) {
					everywhere = false
					break
				}
			}
			if everywhere && !internalAction[ai] {
				// a is continuously enabled on any run confined to comp but
				// firing it always leaves comp: no fair run stays here.
				fairCycle = false
				break
			}
			_ = a
		}
		if fairCycle {
			res.Converges = false
			res.Cycle = make([]*program.State, 0, len(comp))
			for _, v := range comp {
				res.Cycle = append(res.Cycle, sp.State(region[v]))
			}
			return res
		}
	}
	return res
}

// regionEdge is a transition within the T∧¬S region, labeled with the
// index of the program action that produces it.
type regionEdge struct {
	to     int
	action int
}

// denseSCCs is Tarjan's algorithm over a dense adjacency structure with
// labeled edges; it returns components of dense node ids.
func denseSCCs(adj [][]regionEdge) [][]int {
	n := len(adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]int
		stack   []int
		counter int
	)
	type frame struct {
		v, ei int
	}
	var frames []frame
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		frames = append(frames[:0], frame{v: start})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].to
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// WorstDistances returns, for every state index, the worst-case number of
// steps an arbitrary daemon can stretch before reaching S (0 for S states).
// It requires prior arbitrary-daemon convergence; the boolean result is
// false when the region is cyclic or escapes/deadlocks, in which case no
// finite metric exists.
//
// The table is the exact variant function the paper's Section 8 asks
// designers to exhibit: it strictly decreases on every convergence step
// under the worst daemon. internal/daemon's adversarial daemon maximizes
// it greedily, which on a convergent program realizes the worst case.
func (sp *Space) WorstDistances() ([]int32, bool) {
	res := sp.CheckConvergence()
	if !res.Converges {
		return nil, false
	}
	steps := make([]int32, sp.Count)
	// Recompute via memoized DFS; CheckConvergence verified acyclicity, so
	// a simple postorder works. We redo it here to keep CheckConvergence's
	// internals private and this function self-contained.
	const todo = -1
	for i := range steps {
		steps[i] = todo
	}
	var visit func(i int64) int32
	var stackSafe func(i int64) int32
	visit = func(i int64) int32 {
		if sp.inS[i] || !sp.inT[i] {
			return 0
		}
		if steps[i] != todo {
			return steps[i]
		}
		var best int32
		st := sp.State(i)
		for _, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			j := sp.P.Schema.Index(a.Apply(st))
			d := int32(1)
			if !sp.inS[j] {
				d = 1 + visit(j)
			}
			if d > best {
				best = d
			}
		}
		steps[i] = best
		return best
	}
	stackSafe = visit
	for i := int64(0); i < sp.Count; i++ {
		if sp.inT[i] && !sp.inS[i] && steps[i] == todo {
			stackSafe(i)
		}
	}
	for i := range steps {
		if steps[i] == todo {
			steps[i] = 0
		}
	}
	return steps, true
}
