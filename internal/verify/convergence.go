package verify

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"nonmask/internal/program"
)

// ConvergenceResult reports whether every computation from T reaches S, and
// if not, why. When convergence holds under the arbitrary daemon, the
// result carries exact worst-case step counts (the paper's variant-function
// bound, computed rather than exhibited by hand — Section 8 discusses how
// the method "simplifies the problem of exhibiting variant functions").
type ConvergenceResult struct {
	// Converges reports whether every computation starting in T reaches S.
	Converges bool
	// Fair reports which daemon the verdict is for: true for the weakly
	// fair daemon of the paper's computation model, false for the arbitrary
	// (unfair) daemon of the Section 8 remark.
	Fair bool

	// Deadlock, when non-nil, is a T∧¬S state with no enabled action —
	// a finite maximal computation that never reaches S.
	Deadlock *program.State
	// Cycle, when non-empty, is a set of T∧¬S states among which a
	// computation (fair, if Fair) can circulate forever.
	Cycle []*program.State
	// Escape, when non-nil, reports a T∧¬S state from which some action
	// leads outside T — a closure failure surfacing during convergence
	// exploration.
	Escape *ClosureViolation

	// WorstSteps is the maximum, over T∧¬S states, of the longest
	// action sequence a daemon can stretch before S holds. Valid only when
	// Converges under the arbitrary daemon (Fair == false).
	WorstSteps int
	// MeanSteps is the mean of that per-state worst case over all T∧¬S
	// states, or 0 when there are none.
	MeanSteps float64
	// StatesT and StatesS count the states satisfying T and S.
	StatesT, StatesS int64
	// StatesOutsideS counts T∧¬S states (the convergence region).
	StatesOutsideS int64
}

// Summary renders a one-line verdict.
func (r *ConvergenceResult) Summary() string {
	daemon := "arbitrary daemon"
	if r.Fair {
		daemon = "weakly fair daemon"
	}
	if !r.Converges {
		why := "livelock"
		switch {
		case r.Deadlock != nil:
			why = fmt.Sprintf("deadlock at %s", r.Deadlock)
		case r.Escape != nil:
			why = r.Escape.Error()
		case len(r.Cycle) > 0:
			why = fmt.Sprintf("cycle through %d states, e.g. %s", len(r.Cycle), r.Cycle[0])
		}
		return fmt.Sprintf("does NOT converge under %s: %s", daemon, why)
	}
	if r.Fair {
		return fmt.Sprintf("converges under %s (|T∧¬S| = %d states)", daemon, r.StatesOutsideS)
	}
	return fmt.Sprintf("converges under %s: worst %d steps, mean %.2f (|T∧¬S| = %d states)",
		daemon, r.WorstSteps, r.MeanSteps, r.StatesOutsideS)
}

// stateColors for the DFS passes.
const (
	colorWhite uint8 = iota
	colorGray
	colorBlack
)

// CheckConvergence decides convergence from T to S under the arbitrary
// (unfair) central daemon: it holds iff the transition graph restricted to
// T∧¬S has no cycles and no terminal states, and no transition escapes T.
// This is the strongest form — it implies convergence under every daemon.
func (sp *Space) CheckConvergence() *ConvergenceResult {
	res, _ := sp.CheckConvergenceContext(context.Background())
	return res
}

// CheckConvergenceContext is CheckConvergence with cancellation. When the
// successor index is available it runs the sharded backward fixpoint
// (checkConvergenceKahn); otherwise it falls back to a sequential DFS.
// Verdicts and witnesses do not depend on the worker count.
func (sp *Space) CheckConvergenceContext(ctx context.Context) (*ConvergenceResult, error) {
	if sp.idx != nil {
		res, _, err := sp.checkConvergenceKahn(ctx)
		return res, err
	}
	return sp.checkConvergenceDFS(ctx)
}

// checkConvergenceKahn decides arbitrary-daemon convergence by peeling the
// region T∧¬S backwards from S in waves (Kahn's algorithm on the reversed
// region graph):
//
//	wave 0:  region states all of whose region successors... none — i.e.
//	         states whose every successor already satisfies S;
//	wave k:  states whose region successors all resolved in waves < k.
//
// Each wave computes exact worst-case step counts
// (steps[i] = max over enabled actions of 1 if succ∈S else steps[succ]+1)
// because every region successor is resolved in a strictly earlier wave;
// the barrier between waves provides the happens-before for those reads.
// Predecessor release uses an atomic decrement, whose transition to zero
// gives a unique owner the right to schedule the state, so waves are
// duplicate-free. If the peeling stalls with unresolved states, those
// states all lie on or reach region cycles; a sequential DFS over them
// extracts a concrete cycle witness.
//
// The returned steps table (valid only when res.Converges) is the exact
// variant function of the paper's Section 8: it strictly decreases on every
// convergence step under the worst daemon.
func (sp *Space) checkConvergenceKahn(ctx context.Context) (res *ConvergenceResult, _ []int32, err error) {
	// Total 0: the wave fixpoint processes work items, not states, so the
	// space size is not a meaningful progress bound.
	span := startPass(sp.opts, PassConvergeUnfair, 0)
	defer func() {
		if err == nil {
			span.end(sp.Count)
		}
	}()
	res = &ConvergenceResult{Converges: true, StatesT: sp.CountT(), StatesS: sp.CountS()}
	res.StatesOutsideS = sp.weightedCountAndNot(sp.inT, sp.inS)
	steps := make([]int32, sp.Count)
	if res.StatesOutsideS == 0 {
		return res, steps, nil
	}
	workers := sp.workers()

	// Phase 1: scan the region. outstanding[i] counts i's region
	// successors; escapes and deadlocks surface here with minimum-index
	// witnesses (the escape payload is an edge rank, see actionAt). States
	// with no region successors seed the first wave.
	outstanding := make([]int32, sp.Count)
	escape, deadlock := newWitness(), newWitness()
	firstWave := make([][]int64, workers)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			if !sp.region(i) {
				continue
			}
			row := sp.idx.out(i)
			if len(row) == 0 {
				deadlock.offer(i, 0)
				continue
			}
			pending := int32(0)
			for k, j := range row {
				jj := int64(j)
				if !sp.inT.get(jj) {
					escape.offer(i, int64(k))
				} else if !sp.inS.get(jj) {
					pending++
				}
			}
			outstanding[i] = pending
			if pending == 0 {
				firstWave[worker] = append(firstWave[worker], i)
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	if escape.found() {
		st := sp.State(escape.state)
		a := sp.actionAt(escape.state, escape.extra)
		res.Converges = false
		res.Escape = &ClosureViolation{Pred: sp.T, State: st, Action: a, Next: a.Apply(st)}
		return res, nil, nil
	}
	if deadlock.found() {
		res.Converges = false
		res.Deadlock = sp.State(deadlock.state)
		return res, nil, nil
	}

	// Phase 2: the shared reverse CSR — built once per Check by the
	// atomics-free counting-sort builder in graph.go and cached on the
	// space's succIndex, so repeat convergence passes (stair stages,
	// leads-to's embedded analysis) reuse it. The global index keeps one
	// predecessor entry per forward edge; restricting releases to region
	// predecessors below makes multiplicities match outstanding exactly.
	revOff, revPred, err := sp.predIndex(ctx)
	if err != nil {
		return nil, nil, err
	}

	// Phase 3: wave loop. processWave resolves one batch of wave states
	// and hands every newly released predecessor to emit; on the spill
	// tier waves overflow to sorted temp-file runs (frontierSpool), and
	// processing a wave in sorted batches is sound because no wave member
	// reads a same-wave steps entry — all its region successors resolved
	// in strictly earlier waves.
	wave := flatten(firstWave)
	var resolved int64
	processWave := func(batch []int64, emit func(worker int, pp int64)) error {
		return parallelRange(ctx, workers, int64(len(batch)), sp.opts.Progress, func(worker int, lo, hi int64) {
			for w := lo; w < hi; w++ {
				i := batch[w]
				var best int32
				for _, j := range sp.idx.out(i) {
					jj := int64(j)
					if sp.inS.get(jj) {
						if best < 1 {
							best = 1
						}
					} else if d := steps[jj] + 1; d > best {
						best = d
					}
				}
				steps[i] = best
				for _, p := range revPred[revOff[i]:revOff[i+1]] {
					pp := int64(p)
					if !sp.region(pp) {
						continue
					}
					if atomic.AddInt32(&outstanding[pp], -1) == 0 {
						emit(worker, pp)
					}
				}
			}
		})
	}
	if sp.spillFrontiers() {
		cur := newFrontierSpool(sp.arena, workers)
		for _, i := range wave {
			cur.add(0, i)
		}
		for cur.size() > 0 {
			span.observeFrontier(cur.size())
			resolved += cur.size()
			next := newFrontierSpool(sp.arena, workers)
			if err := cur.drain(func(batch []int64) error {
				return processWave(batch, next.add)
			}); err != nil {
				next.release()
				return nil, nil, err
			}
			cur = next
		}
		cur.release()
	} else {
		for len(wave) > 0 {
			span.observeFrontier(int64(len(wave)))
			resolved += int64(len(wave))
			next := make([][]int64, workers)
			if err := processWave(wave, func(worker int, pp int64) {
				next[worker] = append(next[worker], pp)
			}); err != nil {
				return nil, nil, err
			}
			wave = flatten(next)
		}
	}
	// The peel counts representatives; compare against the region's rep
	// count, not the orbit-weighted StatesOutsideS.
	if resolved != countAndNot(sp.inT, sp.inS) {
		// The peeling stalled: every unresolved region state still has an
		// unresolved region successor, so the unresolved set contains a
		// cycle an unfair daemon can circulate in forever.
		res.Converges = false
		res.Cycle = sp.cycleWitness(outstanding)
		return res, nil, nil
	}

	// Aggregate the exact worst-case metric. The per-state sum is integer
	// and orbit-weighted, so the mean is identical for every worker count
	// and equals the full space's mean exactly in quotient mode.
	var (
		mu    sync.Mutex
		worst int32
		sum   int64
	)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		var w int32
		var s int64
		for i := lo; i < hi; i++ {
			if !sp.region(i) {
				continue
			}
			if d := steps[i]; d > w {
				w = d
			}
			s += sp.weightOf(i) * int64(steps[i])
		}
		mu.Lock()
		if w > worst {
			worst = w
		}
		sum += s
		mu.Unlock()
	})
	if err != nil {
		return nil, nil, err
	}
	res.WorstSteps = int(worst)
	res.MeanSteps = float64(sum) / float64(res.StatesOutsideS)
	return res, steps, nil
}

// flatten concatenates per-worker index buffers.
func flatten(parts [][]int64) []int64 {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int64, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// cycleWitness extracts a concrete region cycle from the unresolved
// residue of a stalled peeling (states with outstanding > 0). Every such
// state has at least one unresolved region successor, so a DFS restricted
// to the residue must close a cycle; the DFS stack at the moment the back
// edge appears is the cycle, in forward order.
func (sp *Space) cycleWitness(outstanding []int32) []*program.State {
	unresolved := func(i int64) bool { return sp.region(i) && outstanding[i] > 0 }
	color := make([]uint8, sp.Count)
	type frame struct {
		i   int64
		pos int
	}
	var stack []frame
	for start := int64(0); start < sp.Count; start++ {
		if !unresolved(start) || color[start] != colorWhite {
			continue
		}
		color[start] = colorGray
		stack = append(stack[:0], frame{i: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			row := sp.idx.out(f.i)
			pushed := false
			for f.pos < len(row) {
				j := row[f.pos]
				f.pos++
				if !unresolved(int64(j)) {
					continue
				}
				jj := int64(j)
				if color[jj] == colorGray {
					// Back edge: the stack suffix from jj is the cycle.
					k := len(stack) - 1
					for k >= 0 && stack[k].i != jj {
						k--
					}
					cyc := make([]*program.State, 0, len(stack)-k)
					for ; k < len(stack); k++ {
						cyc = append(cyc, sp.State(stack[k].i))
					}
					return cyc
				}
				if color[jj] == colorWhite {
					color[jj] = colorGray
					stack = append(stack, frame{i: jj})
					pushed = true
					break
				}
			}
			if pushed {
				continue
			}
			color[f.i] = colorBlack
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// checkConvergenceDFS is the sequential fallback used when the successor
// table is unavailable (state count above int32 range or table over the
// memory budget): an iterative white/gray/black DFS with postorder
// worst-step computation.
func (sp *Space) checkConvergenceDFS(ctx context.Context) (res *ConvergenceResult, err error) {
	// Total 0: the wave fixpoint processes work items, not states, so the
	// space size is not a meaningful progress bound.
	span := startPass(sp.opts, PassConvergeUnfair, 0)
	defer func() {
		if err == nil {
			span.end(sp.Count)
		}
	}()
	res = &ConvergenceResult{Converges: true, StatesT: sp.CountT(), StatesS: sp.CountS()}
	res.StatesOutsideS = sp.weightedCountAndNot(sp.inT, sp.inS)

	// steps[i]: worst-case number of actions to reach S from i, computed
	// during the DFS postorder.
	steps := make([]int32, sp.Count)
	color := make([]uint8, sp.Count)
	parent := make([]int64, sp.Count)
	for i := range parent {
		parent[i] = -1
	}

	var succBuf []int64
	type frame struct {
		i    int64
		succ []int64
		pos  int
	}
	var stack []frame

	for start := int64(0); start < sp.Count; start++ {
		if start&(chunkStates-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !sp.region(start) || color[start] != colorWhite {
			continue
		}
		color[start] = colorGray
		stack = append(stack[:0], frame{i: start, succ: sp.successorsChecked(start, res, &succBuf)})
		if !res.Converges {
			return res, nil
		}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.pos == 0 && len(f.succ) == 0 {
				// Terminal T∧¬S state: maximal finite computation outside S.
				res.Converges = false
				res.Deadlock = sp.State(f.i)
				return res, nil
			}
			if f.pos < len(f.succ) {
				j := f.succ[f.pos]
				f.pos++
				if sp.inS.get(j) {
					if steps[f.i] < 1 {
						steps[f.i] = 1
					}
					continue
				}
				switch color[j] {
				case colorWhite:
					color[j] = colorGray
					parent[j] = f.i
					succs := sp.successorsChecked(j, res, &succBuf)
					if !res.Converges {
						return res, nil
					}
					// The append may reallocate; f is re-fetched at loop top.
					stack = append(stack, frame{i: j, succ: succs})
				case colorGray:
					// Cycle within T∧¬S: an unfair daemon loops forever.
					res.Converges = false
					res.Cycle = sp.reconstructCycle(parent, f.i, j)
					return res, nil
				case colorBlack:
					if d := steps[j] + 1; d > steps[f.i] {
						steps[f.i] = d
					}
				}
				continue
			}
			color[f.i] = colorBlack
			done := *f
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if d := steps[done.i] + 1; d > steps[p.i] {
					steps[p.i] = d
				}
			}
		}
	}

	// Aggregate the exact worst-case metric (orbit-weighted).
	var sum int64
	var n int64
	for i := int64(0); i < sp.Count; i++ {
		if sp.region(i) {
			if int(steps[i]) > res.WorstSteps {
				res.WorstSteps = int(steps[i])
			}
			sum += sp.weightOf(i) * int64(steps[i])
			n += sp.weightOf(i)
		}
	}
	if n > 0 {
		res.MeanSteps = float64(sum) / float64(n)
	}
	return res, nil
}

// successorsChecked computes the successors of T∧¬S state i, copying them
// into a fresh slice (the DFS keeps them on its stack), and records a
// closure escape in res if a successor leaves T.
func (sp *Space) successorsChecked(i int64, res *ConvergenceResult, buf *[]int64) []int64 {
	*buf = sp.successors(i, sp.P.Actions, *buf)
	out := make([]int64, 0, len(*buf))
	for k, j := range *buf {
		if !sp.inT.get(j) {
			st := sp.State(i)
			var act *program.Action
			// Recover which action produced successor k.
			n := 0
			for _, a := range sp.P.Actions {
				if a.Guard(st) {
					if n == k {
						act = a
						break
					}
					n++
				}
			}
			res.Converges = false
			res.Escape = &ClosureViolation{Pred: sp.T, State: st, Action: act, Next: sp.State(j)}
			return nil
		}
		out = append(out, j)
	}
	return out
}

// reconstructCycle walks parent links from `from` back to `to` and returns
// the cycle's states in forward order, closing with the back edge from→to.
func (sp *Space) reconstructCycle(parent []int64, from, to int64) []*program.State {
	var idxs []int64
	for v := from; v != to; v = parent[v] {
		idxs = append(idxs, v)
		if parent[v] < 0 {
			break
		}
	}
	idxs = append(idxs, to)
	// Reverse into forward order (to ... from).
	out := make([]*program.State, len(idxs))
	for i, j := range idxs {
		out[len(idxs)-1-i] = sp.State(j)
	}
	return out
}

// CheckFairConvergence decides convergence from T to S under the weakly
// fair daemon of the paper's computation model (Section 2: "each action in
// the set that is continuously enabled along the sequence is eventually
// executed").
//
// An infinite computation confined to T∧¬S eventually stays within one
// strongly connected component C of the T∧¬S transition graph. Such a
// confined computation can be weakly fair iff every action enabled at all
// states of C has some transition that stays inside C; otherwise that
// action is continuously enabled but firing it leaves C, so no fair
// computation remains in C. Convergence therefore fails iff some T∧¬S
// state is terminal, some transition escapes T, or some SCC admits a fair
// cycle by this criterion.
func (sp *Space) CheckFairConvergence() *ConvergenceResult {
	res, _ := sp.CheckFairConvergenceContext(context.Background())
	return res
}

// CheckFairConvergenceContext is CheckFairConvergence with cancellation.
// The region collection and labeled-adjacency build are sharded when the
// successor table is available; the SCC analysis itself is sequential
// (component structure is rarely the bottleneck).
func (sp *Space) CheckFairConvergenceContext(ctx context.Context) (res *ConvergenceResult, err error) {
	span := startPass(sp.opts, PassConvergeFair, 0)
	defer func() {
		if err == nil {
			span.end(sp.Count)
		}
	}()
	res = &ConvergenceResult{Converges: true, Fair: true, StatesT: sp.CountT(), StatesS: sp.CountS()}
	res.StatesOutsideS = sp.weightedCountAndNot(sp.inT, sp.inS)
	if res.StatesOutsideS == 0 {
		return res, nil
	}

	var (
		region    []int64
		adj       [][]regionEdge
		enabledAt func(ai int, v int) bool
	)
	if sp.idx != nil {
		var enabled [][]int32
		var err error
		region, adj, enabled, err = sp.buildRegionGraph(ctx, res)
		if err != nil {
			return nil, err
		}
		if !res.Converges {
			return res, nil
		}
		// enabled[v] is the sorted action-index list behind region[v]'s CSR
		// edges, materialized by the region-graph build's guard zip.
		enabledAt = func(ai int, v int) bool {
			for _, a := range enabled[v] {
				if int(a) == ai {
					return true
				}
				if int(a) > ai {
					return false
				}
			}
			return false
		}
	} else {
		if done := sp.buildRegionGraphSeq(res, &region, &adj); done {
			return res, nil
		}
		enabledAt = func(ai int, v int) bool {
			return sp.P.Actions[ai].Guard(sp.State(region[v]))
		}
	}

	// Tarjan SCC over the dense region graph (iterative).
	comps := denseSCCs(adj)

	for _, comp := range comps {
		// Does comp contain any internal edge at all?
		inComp := make(map[int]bool, len(comp))
		for _, v := range comp {
			inComp[v] = true
		}
		hasInternal := false
		internalAction := make(map[int]bool)
		for _, v := range comp {
			for _, e := range adj[v] {
				if inComp[e.to] {
					hasInternal = true
					internalAction[e.action] = true
				}
			}
		}
		if !hasInternal {
			continue // trivial SCC without self-loop: no infinite stay
		}
		// A∞: actions enabled at every state of the component.
		fairCycle := true
		for ai := range sp.P.Actions {
			everywhere := true
			for _, v := range comp {
				if !enabledAt(ai, v) {
					everywhere = false
					break
				}
			}
			if everywhere && !internalAction[ai] {
				// The action is continuously enabled on any run confined to
				// comp but firing it always leaves comp: no fair run stays.
				fairCycle = false
				break
			}
		}
		if fairCycle {
			res.Converges = false
			res.Cycle = make([]*program.State, 0, len(comp))
			for _, v := range comp {
				res.Cycle = append(res.Cycle, sp.State(region[v]))
			}
			return res, nil
		}
	}
	return res, nil
}

// buildRegionGraph collects the T∧¬S region in ascending state order and
// builds its action-labeled transition graph, all sharded. Action labels
// come from zipping each region state's guard scan with its CSR edge list
// (the k-th edge is the k-th enabled action); the per-state enabled-action
// lists are returned for the fair daemon's A∞ test. Escapes and deadlocks
// are recorded on res (minimum-index witness) with res.Converges cleared.
func (sp *Space) buildRegionGraph(ctx context.Context, res *ConvergenceResult) ([]int64, [][]regionEdge, [][]int32, error) {
	workers := sp.workers()
	nChunks := (sp.Count + chunkStates - 1) / chunkStates

	// Pass 1: per-chunk region counts, so that pass 2 can place each
	// chunk's states at a deterministic offset of the dense list.
	counts := make([]int64, nChunks)
	err := parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		var n int64
		for i := lo; i < hi; i++ {
			if sp.region(i) {
				n++
			}
		}
		counts[lo/chunkStates] = n
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var total int64
	for c := range counts {
		counts[c], total = total, total+counts[c]
	}

	// Pass 2: fill the dense list and the state→dense id map.
	region := make([]int64, total)
	ids := make([]int32, sp.Count)
	err = parallelRange(ctx, workers, sp.Count, sp.opts.Progress, func(_ int, lo, hi int64) {
		base := counts[lo/chunkStates]
		for i := lo; i < hi; i++ {
			if !sp.region(i) {
				ids[i] = -1
				continue
			}
			region[base] = i
			ids[i] = int32(base)
			base++
		}
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// Pass 3: adjacency, one dense node per iteration (disjoint writes).
	// Each region state's guard scan is zipped with its CSR edge list to
	// recover the action labels the packed 4-byte edges leave implicit.
	adj := make([][]regionEdge, total)
	enabled := make([][]int32, total)
	escape, deadlock := newWitness(), newWitness()
	scr := sp.newStates()
	err = parallelRange(ctx, workers, total, sp.opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		for id := lo; id < hi; id++ {
			i := region[id]
			row := sp.idx.out(i)
			if len(row) == 0 {
				deadlock.offer(i, 0)
				continue
			}
			sp.stateInto(i, st)
			var edges []regionEdge
			acts := make([]int32, 0, len(row))
			rank := 0
			for k, a := range sp.P.Actions {
				if !a.Guard(st) {
					continue
				}
				jj := int64(row[rank])
				rank++
				acts = append(acts, int32(k))
				if !sp.inT.get(jj) {
					escape.offer(i, int64(k))
					continue
				}
				if sp.inS.get(jj) {
					continue
				}
				edges = append(edges, regionEdge{to: int(ids[jj]), action: k})
			}
			adj[id] = edges
			enabled[id] = acts
		}
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if escape.found() {
		st := sp.State(escape.state)
		a := sp.P.Actions[escape.extra]
		res.Converges = false
		res.Escape = &ClosureViolation{Pred: sp.T, State: st, Action: a, Next: a.Apply(st)}
		return region, adj, enabled, nil
	}
	if deadlock.found() {
		res.Converges = false
		res.Deadlock = sp.State(deadlock.state)
	}
	return region, adj, enabled, nil
}

// buildRegionGraphSeq is the sequential fallback region-graph builder (no
// successor table). It returns true when a deadlock or escape already
// settles the verdict on res.
func (sp *Space) buildRegionGraphSeq(res *ConvergenceResult, regionOut *[]int64, adjOut *[][]regionEdge) bool {
	region := make([]int64, 0)
	inRegion := make(map[int64]int) // state index -> dense id
	for i := int64(0); i < sp.Count; i++ {
		if sp.region(i) {
			inRegion[i] = len(region)
			region = append(region, i)
		}
	}
	adj := make([][]regionEdge, len(region))
	for id, i := range region {
		st := sp.State(i)
		any := false
		for ai, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			any = true
			j := sp.indexOf(a.Apply(st))
			if !sp.inT.get(j) {
				res.Converges = false
				res.Escape = &ClosureViolation{Pred: sp.T, State: st, Action: a, Next: sp.State(j)}
				return true
			}
			if sp.inS.get(j) {
				continue
			}
			adj[id] = append(adj[id], regionEdge{to: inRegion[j], action: ai})
		}
		if !any {
			res.Converges = false
			res.Deadlock = st
			return true
		}
	}
	*regionOut, *adjOut = region, adj
	return false
}

// regionEdge is a transition within the T∧¬S region, labeled with the
// index of the program action that produces it.
type regionEdge struct {
	to     int
	action int
}

// denseSCCs is Tarjan's algorithm over a dense adjacency structure with
// labeled edges; it returns components of dense node ids.
func denseSCCs(adj [][]regionEdge) [][]int {
	n := len(adj)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]int
		stack   []int
		counter int
	)
	type frame struct {
		v, ei int
	}
	var frames []frame
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		frames = append(frames[:0], frame{v: start})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].to
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// WorstDistances returns, for every state index, the worst-case number of
// steps an arbitrary daemon can stretch before reaching S (0 for S states).
// It requires prior arbitrary-daemon convergence; the boolean result is
// false when the region is cyclic or escapes/deadlocks, in which case no
// finite metric exists.
//
// The table is the exact variant function the paper's Section 8 asks
// designers to exhibit: it strictly decreases on every convergence step
// under the worst daemon. internal/daemon's adversarial daemon maximizes
// it greedily, which on a convergent program realizes the worst case.
func (sp *Space) WorstDistances() ([]int32, bool) {
	d, ok, _ := sp.WorstDistancesContext(context.Background())
	return d, ok
}

// WorstDistancesContext is WorstDistances with cancellation. With the
// successor table available the distances fall out of the sharded
// fixpoint; otherwise a sequential memoized DFS recomputes them. The
// table is cached on the space: the metrics passes, the adversarial
// daemon, and repeat callers all share one computation.
func (sp *Space) WorstDistancesContext(ctx context.Context) ([]int32, bool, error) {
	sp.stepsMu.Lock()
	defer sp.stepsMu.Unlock()
	if sp.stepsKnown {
		return sp.stepsTab, sp.stepsOK, nil
	}
	steps, ok, err := sp.worstDistancesLocked(ctx)
	if err != nil {
		return nil, false, err
	}
	sp.stepsTab, sp.stepsOK, sp.stepsKnown = steps, ok, true
	return steps, ok, nil
}

func (sp *Space) worstDistancesLocked(ctx context.Context) ([]int32, bool, error) {
	if sp.idx != nil {
		res, steps, err := sp.checkConvergenceKahn(ctx)
		if err != nil {
			return nil, false, err
		}
		if !res.Converges {
			return nil, false, nil
		}
		return steps, true, nil
	}
	res, err := sp.checkConvergenceDFS(ctx)
	if err != nil {
		return nil, false, err
	}
	if !res.Converges {
		return nil, false, nil
	}
	steps := make([]int32, sp.Count)
	// Recompute via memoized DFS; the convergence check verified
	// acyclicity, so a simple postorder works.
	const todo = -1
	for i := range steps {
		steps[i] = todo
	}
	var visit func(i int64) int32
	visit = func(i int64) int32 {
		if sp.inS.get(i) || !sp.inT.get(i) {
			return 0
		}
		if steps[i] != todo {
			return steps[i]
		}
		var best int32
		st := sp.State(i)
		for _, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			j := sp.indexOf(a.Apply(st))
			d := int32(1)
			if !sp.inS.get(j) {
				d = 1 + visit(j)
			}
			if d > best {
				best = d
			}
		}
		steps[i] = best
		return best
	}
	for i := int64(0); i < sp.Count; i++ {
		if sp.region(i) && steps[i] == todo {
			visit(i)
		}
	}
	for i := range steps {
		if steps[i] == todo {
			steps[i] = 0
		}
	}
	return steps, true, nil
}
