package verify

import (
	"context"
	"strings"
	"testing"

	"nonmask/internal/program"
)

// xyzSchema builds the paper's Section 4/6 example: x, y, z over 0..4 with
// constraints x != y and x <= z.
func xyzSchema(t *testing.T) (*program.Schema, program.VarID, program.VarID, program.VarID,
	*program.Predicate, *program.Predicate) {
	t.Helper()
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 4))
	y := s.MustDeclare("y", program.IntRange(0, 4))
	z := s.MustDeclare("z", program.IntRange(0, 4))
	neq := program.NewPredicate("x!=y", []program.VarID{x, y},
		func(st *program.State) bool { return st.Get(x) != st.Get(y) })
	leq := program.NewPredicate("x<=z", []program.VarID{x, z},
		func(st *program.State) bool { return st.Get(x) <= st.Get(z) })
	return s, x, y, z, neq, leq
}

func TestCheckPreservesPaperExample(t *testing.T) {
	// Section 6: "consider for x != y a convergence action that decreases x
	// if x equals y ... The first action preserves the constraint of the
	// second action."
	s, x, y, z, neq, leq := xyzSchema(t)
	_ = z
	decX := program.NewAction("dec-x", program.Convergence,
		[]program.VarID{x, y}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == st.Get(y) && st.Get(x) > 0 },
		func(st *program.State) { st.Set(x, st.Get(x)-1) })

	res, err := CheckPreservesContext(context.Background(), s, decX, leq, nil, Options{})
	if err != nil {
		t.Fatalf("CheckPreserves: %v", err)
	}
	if !res.Preserves {
		t.Errorf("decreasing x does not preserve x<=z: counterexample %s -> %s", res.State, res.Next)
	}
	_ = neq
}

func TestCheckPreservesViolation(t *testing.T) {
	// Section 4: "if a convergence action satisfies the first constraint by
	// changing x ... it can violate the second constraint."
	s, x, y, _, _, leq := xyzSchema(t)
	incX := program.NewAction("inc-x", program.Convergence,
		[]program.VarID{x, y}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == st.Get(y) && st.Get(x) < 4 },
		func(st *program.State) { st.Set(x, st.Get(x)+1) })

	res, err := CheckPreservesContext(context.Background(), s, incX, leq, nil, Options{})
	if err != nil {
		t.Fatalf("CheckPreserves: %v", err)
	}
	if res.Preserves {
		t.Fatal("increasing x reported to preserve x<=z")
	}
	// Counterexample must be genuine: guard and constraint hold before,
	// constraint fails after.
	if !incX.Guard(res.State) || !leq.Holds(res.State) || leq.Holds(res.Next) {
		t.Errorf("bogus counterexample %s -> %s", res.State, res.Next)
	}
}

func TestCheckPreservesConditional(t *testing.T) {
	// Theorem 3-style conditional preservation: the action violates c in
	// general but preserves it whenever a lower-layer constraint holds.
	s := program.NewSchema()
	a := s.MustDeclare("a", program.IntRange(0, 4))
	b := s.MustDeclare("b", program.IntRange(0, 4))
	// Action: b := a (enabled when b != a).
	copyA := program.NewAction("copy", program.Convergence,
		[]program.VarID{a, b}, []program.VarID{b},
		func(st *program.State) bool { return st.Get(b) != st.Get(a) },
		func(st *program.State) { st.Set(b, st.Get(a)) })
	// c: b <= 2. Violated when a > 2; preserved given lower: a <= 2.
	c := program.NewPredicate("b<=2", []program.VarID{b},
		func(st *program.State) bool { return st.Get(b) <= 2 })
	lower := program.NewPredicate("a<=2", []program.VarID{a},
		func(st *program.State) bool { return st.Get(a) <= 2 })

	res, err := CheckPreservesContext(context.Background(), s, copyA, c, nil, Options{})
	if err != nil {
		t.Fatalf("CheckPreserves: %v", err)
	}
	if res.Preserves {
		t.Error("copy preserves b<=2 unconditionally?")
	}
	res, err = CheckPreservesContext(context.Background(), s, copyA, c, []*program.Predicate{lower}, Options{})
	if err != nil {
		t.Fatalf("CheckPreserves: %v", err)
	}
	if !res.Preserves {
		t.Errorf("copy does not preserve b<=2 given a<=2: %s -> %s", res.State, res.Next)
	}
}

func TestProjectedAgreesWithExhaustive(t *testing.T) {
	s, x, y, z, neq, leq := xyzSchema(t)
	actions := []*program.Action{
		program.NewAction("dec-x", program.Convergence,
			[]program.VarID{x, y}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == st.Get(y) && st.Get(x) > 0 },
			func(st *program.State) { st.Set(x, st.Get(x)-1) }),
		program.NewAction("inc-x", program.Convergence,
			[]program.VarID{x, y}, []program.VarID{x},
			func(st *program.State) bool { return st.Get(x) == st.Get(y) && st.Get(x) < 4 },
			func(st *program.State) { st.Set(x, st.Get(x)+1) }),
		program.NewAction("raise-z", program.Convergence,
			[]program.VarID{x, z}, []program.VarID{z},
			func(st *program.State) bool { return st.Get(x) > st.Get(z) },
			func(st *program.State) { st.Set(z, st.Get(x)) }),
	}
	for _, a := range actions {
		for _, c := range []*program.Predicate{neq, leq} {
			ex, err := CheckPreservesContext(context.Background(), s, a, c, nil, Options{})
			if err != nil {
				t.Fatalf("exhaustive: %v", err)
			}
			pr, err := CheckPreservesProjectedContext(context.Background(), s, a, c, nil, Options{})
			if err != nil {
				t.Fatalf("projected: %v", err)
			}
			if ex.Preserves != pr.Preserves {
				t.Errorf("action %s / constraint %s: exhaustive=%v projected=%v",
					a.Name, c.Name, ex.Preserves, pr.Preserves)
			}
		}
	}
}

func TestProjectedScalesToWideSchemas(t *testing.T) {
	// 40 variables of domain 0..9: full space 10^40, projected space 100.
	s := program.NewSchema()
	ids := s.MustDeclareArray("v", 40, program.IntRange(0, 9))
	a := program.NewAction("fix", program.Convergence,
		[]program.VarID{ids[0], ids[1]}, []program.VarID{ids[1]},
		func(st *program.State) bool { return st.Get(ids[1]) < st.Get(ids[0]) },
		func(st *program.State) { st.Set(ids[1], st.Get(ids[0])) })
	c := program.NewPredicate("v1>=v0", []program.VarID{ids[0], ids[1]},
		func(st *program.State) bool { return st.Get(ids[1]) >= st.Get(ids[0]) })

	if _, err := CheckPreservesContext(context.Background(), s, a, c, nil, Options{}); err == nil {
		t.Error("exhaustive check on 10^40 space succeeded")
	}
	res, err := CheckPreservesProjectedContext(context.Background(), s, a, c, nil, Options{})
	if err != nil {
		t.Fatalf("projected: %v", err)
	}
	if !res.Preserves {
		t.Errorf("fix does not preserve its own constraint: %s", res.State)
	}
}

func TestPreservesDispatch(t *testing.T) {
	s, x, y, _, neq, _ := xyzSchema(t)
	_ = y
	a := program.NewAction("noop", program.Convergence,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return false },
		func(st *program.State) {})
	for _, strat := range []Strategy{Exhaustive, Projected} {
		res, err := Preserves(strat, s, a, neq, nil, Options{})
		if err != nil || !res.Preserves {
			t.Errorf("%v: res=%+v err=%v", strat, res, err)
		}
	}
	if _, err := Preserves(Strategy(99), s, a, neq, nil, Options{}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if Exhaustive.String() != "exhaustive" || Projected.String() != "projected" {
		t.Error("Strategy.String wrong")
	}
}

func TestGuardImpliesNot(t *testing.T) {
	s, x, y, _, neq, _ := xyzSchema(t)
	// Well-formed convergence action: guard x=y is exactly ¬(x!=y).
	good := program.NewAction("fix", program.Convergence,
		[]program.VarID{x, y}, []program.VarID{y},
		func(st *program.State) bool { return st.Get(x) == st.Get(y) },
		func(st *program.State) {})
	ce, err := GuardImpliesNot(s, good, neq, Options{})
	if err != nil {
		t.Fatalf("GuardImpliesNot: %v", err)
	}
	if ce != nil {
		t.Errorf("well-formed action flagged: %s", ce)
	}
	// Ill-formed: guard true overlaps states where the constraint holds.
	bad := program.NewAction("always", program.Convergence,
		[]program.VarID{x, y}, []program.VarID{y},
		func(st *program.State) bool { return true },
		func(st *program.State) {})
	ce, err = GuardImpliesNot(s, bad, neq, Options{})
	if err != nil {
		t.Fatalf("GuardImpliesNot: %v", err)
	}
	if ce == nil {
		t.Error("ill-formed action not flagged")
	} else if !neq.Holds(ce) {
		t.Errorf("witness %s does not satisfy the constraint", ce)
	}
}

func TestFaultSpan(t *testing.T) {
	// Program: x<2 -> x++ over 0..5; fault: x := 0. From init x=0, the
	// reachable closure is {0,1,2}.
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 5))
	p := program.New("walk", s)
	p.Add(program.NewAction("inc", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < 2 },
		func(st *program.State) { st.Set(x, st.Get(x)+1) }))
	fault := program.NewAction("reset", program.Fault,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) > 0 },
		func(st *program.State) { st.Set(x, 0) })
	init := program.NewPredicate("x=0", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 0 })

	res, err := FaultSpanContext(context.Background(), p, []*program.Action{fault}, init, Options{})
	if err != nil {
		t.Fatalf("FaultSpan: %v", err)
	}
	if res.States != 3 {
		t.Errorf("span has %d states, want 3", res.States)
	}
	if res.Total != 6 {
		t.Errorf("total = %d, want 6", res.Total)
	}
	for v := int32(0); v <= 5; v++ {
		st := s.NewState()
		st.Set(x, v)
		want := v <= 2
		if got := res.Span.Holds(st); got != want {
			t.Errorf("span(x=%d) = %v, want %v", v, got, want)
		}
	}
	if !strings.Contains(res.Span.Name, "fault-span") {
		t.Errorf("span name = %q", res.Span.Name)
	}
}

func TestFaultSpanEmptyInit(t *testing.T) {
	s := program.NewSchema()
	s.MustDeclare("x", program.Bool())
	p := program.New("p", s)
	if _, err := FaultSpanContext(context.Background(), p, nil, program.False(), Options{}); err == nil {
		t.Error("FaultSpan with empty init succeeded")
	}
}

func TestFaultSpanIsClosedUnderProgramAndFaults(t *testing.T) {
	// The computed span must be closed under both program and fault
	// actions — the defining property of a fault-span (Section 3).
	s := program.NewSchema()
	x := s.MustDeclare("x", program.IntRange(0, 7))
	p := program.New("p", s)
	p.Add(program.NewAction("double", program.Closure,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) <= 3 },
		func(st *program.State) { st.Set(x, st.Get(x)*2) }))
	fault := program.NewAction("bump", program.Fault,
		[]program.VarID{x}, []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) < 7 },
		func(st *program.State) { st.Set(x, st.Get(x)+1) })
	init := program.NewPredicate("x=1", []program.VarID{x},
		func(st *program.State) bool { return st.Get(x) == 1 })
	res, err := FaultSpanContext(context.Background(), p, []*program.Action{fault}, init, Options{})
	if err != nil {
		t.Fatalf("FaultSpan: %v", err)
	}
	all := p.Union("with-faults", fault)
	sp, err := NewSpaceContext(context.Background(), all, res.Span, program.True(), Options{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if v := sp.CheckClosed(res.Span, nil); v != nil {
		t.Errorf("fault span not closed: %v", v)
	}
}
