// Package verify is an explicit-state model checker for guarded-command
// programs. It decides, exactly, the two requirements of the paper's
// definition of fault-tolerance (Section 3):
//
//	Closure:     both S and T are closed in p.
//	Convergence: every computation of p that starts at any state where T
//	             holds reaches a state where S holds.
//
// Convergence is decided under two daemons: the arbitrary (unfair) central
// daemon, and the weakly fair daemon the paper's computation model assumes
// (Section 2). The paper's concluding remark that "the fairness requirement
// on program computations is often unnecessary" is checkable by comparing
// the two.
//
// The checker is built for throughput: membership bitmaps are uint64-packed
// bitsets, one-step successors are precomputed into a CSR transition graph
// covering only enabled edges (with a lazily built, cached reverse CSR for
// the backward passes), and every pass — space construction, closure
// scans, the convergence fixpoint, fault-span and leads-to reachability —
// is sharded across a worker pool (Options.Workers) with context
// cancellation polled between chunks. The unified entry point is Check;
// the per-pass methods remain for callers that need individual verdicts.
//
// Instances that outgrow RAM climb the scaling ladder of DESIGN §13
// (WithSpaceMode): symmetry-quotient spaces over canonical orbit
// representatives, and disk-spilled spaces whose CSR lives in mmap'd
// segment files with frontiers overflowing to sorted temp-file runs.
package verify

import (
	"context"
	"fmt"
	"math/bits"
	"sync"

	"nonmask/internal/program"
)

// Space is a fully enumerated state space of one program, with packed
// membership bitsets for the invariant S and fault-span T and a
// precomputed CSR successor index (see succIndex in graph.go). It
// underlies all checks and the adversarial daemon's exact distance metric.
// A Space's checks honour the Options it was built with (worker count in
// particular).
//
// In quotient mode the space ranges over the orbit representatives of the
// advertised Symmetry: Count is the representative count, state indices
// are quotient ids, and FullCount keeps the full-product size. Reported
// state counts (|S|, |T|, the distance profile, …) are orbit-weighted, so
// they equal the full space's numbers exactly. In spill mode the CSR
// arrays view mmap'd segment files owned by the space's arena; Close
// releases them.
type Space struct {
	P     *program.Program
	S     *program.Predicate
	T     *program.Predicate
	Count int64
	// FullCount is the full cartesian-product state count; equal to Count
	// except in quotient mode.
	FullCount int64

	opts     Options
	mode     SpaceMode
	inS, inT bitset
	nA       int
	// idx is the CSR transition graph over enabled edges, shared by
	// pointer with derived stage spaces so its cached reverse index is
	// built at most once per Check. nil when the edge set exceeds
	// succIndexBudget (the passes then recompute successors on the fly).
	idx *succIndex

	// quot is the symmetry quotient (reps, weights, canonical lookup);
	// nil outside quotient mode.
	quot *quotient
	// arena owns the disk-backed artifacts of spill mode; nil otherwise.
	// Derived stage spaces share it without owning it.
	arena     *spillArena
	ownsArena bool

	// stepsMu guards the WorstDistances cache: the exact worst-case
	// distance table, computed at most once per space (the metrics passes
	// and the adversarial daemon both consume it).
	stepsMu    sync.Mutex
	stepsTab   []int32
	stepsOK    bool
	stepsKnown bool
}

// NewSpaceContext enumerates the program's state space and evaluates S
// and T at every state, failing if the space exceeds opts.MaxStates.
// Enumeration, predicate evaluation and successor-table construction are
// sharded across opts.Workers goroutines and poll ctx between chunks.
// Most callers want Check instead; NewSpaceContext is for follow-up
// passes on a space without a full verdict bundle.
//
// The space-mode ladder (DESIGN §13) resolves here. Explicit modes force
// their tier; SpaceAuto tries the full in-RAM space first and, when the
// measured edge set busts the CSR budget, escalates to the symmetry
// quotient (if a Symmetry is advertised), then to the spill tier (if a
// spill directory is configured), before settling for the on-the-fly
// fallback. MaxStates always bounds the full-product count — enumeration
// visits every full state once even in quotient mode.
func NewSpaceContext(ctx context.Context, p *program.Program, S, T *program.Predicate, opts Options) (*Space, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	fullCount, ok := p.Schema.StateCount()
	if !ok || fullCount > opts.maxStates() {
		return nil, fmt.Errorf("verify: state space of %q too large (%d states, limit %d)",
			p.Name, fullCount, opts.maxStates())
	}
	switch opts.SpaceMode {
	case SpaceFull:
		return newSpace(ctx, p, S, T, opts, SpaceFull, fullCount, nil, nil)
	case SpaceQuotient:
		q, err := buildQuotient(ctx, p, opts, fullCount)
		if err != nil {
			return nil, err
		}
		return newSpace(ctx, p, S, T, opts, SpaceQuotient, fullCount, q, nil)
	case SpaceSpill:
		arena, err := newSpillArena(opts.SpillDir)
		if err != nil {
			return nil, err
		}
		sp, err := newSpace(ctx, p, S, T, opts, SpaceSpill, fullCount, nil, arena)
		if err != nil {
			_ = arena.close()
			return nil, err
		}
		return sp, nil
	}

	// SpaceAuto: full first; each escalation only triggers when the tier
	// below failed to materialize its CSR.
	sp, err := newSpace(ctx, p, S, T, opts, SpaceFull, fullCount, nil, nil)
	if err != nil || sp.idx != nil {
		return sp, err
	}
	if opts.Symmetry != nil {
		q, err := buildQuotient(ctx, p, opts, fullCount)
		if err != nil {
			return nil, err
		}
		qsp, err := newSpace(ctx, p, S, T, opts, SpaceQuotient, fullCount, q, nil)
		if err != nil || qsp.idx != nil || opts.SpillDir == "" {
			return qsp, err
		}
		arena, err := newSpillArena(opts.SpillDir)
		if err != nil {
			return nil, err
		}
		ssp, err := newSpace(ctx, p, S, T, opts, SpaceSpill, fullCount, q, arena)
		if err != nil {
			_ = arena.close()
			return nil, err
		}
		return ssp, nil
	}
	if opts.SpillDir != "" {
		arena, err := newSpillArena(opts.SpillDir)
		if err != nil {
			return nil, err
		}
		ssp, err := newSpace(ctx, p, S, T, opts, SpaceSpill, fullCount, nil, arena)
		if err != nil {
			_ = arena.close()
			return nil, err
		}
		return ssp, nil
	}
	return sp, nil // on-the-fly fallback
}

// newSpace builds one tier: enumerate (over representatives in quotient
// mode), evaluate S/T, build the CSR (arena-backed in spill mode).
func newSpace(ctx context.Context, p *program.Program, S, T *program.Predicate, opts Options,
	mode SpaceMode, fullCount int64, q *quotient, arena *spillArena) (*Space, error) {
	count := fullCount
	if q != nil {
		count = int64(len(q.reps))
	}
	sp := &Space{
		P: p, S: S, T: T, Count: count, FullCount: fullCount,
		opts: opts, mode: mode, quot: q,
		arena: arena, ownsArena: arena != nil,
		nA:  len(p.Actions),
		inS: newBitset(count),
		inT: newBitset(count),
	}
	w := newWitness()
	scr := sp.newStates()
	span := startPass(opts, PassEnumerate, count)
	err := parallelRange(ctx, sp.workers(), count, sp.opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		for i := lo; i < hi; i++ {
			sp.stateInto(i, st)
			s, t := S.Holds(st), T.Holds(st)
			if s {
				sp.inS.set(i)
			}
			if t {
				sp.inT.set(i)
			}
			if s && !t {
				w.offer(i, 0)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if w.found() {
		return nil, fmt.Errorf("verify: S does not imply T at state %s", sp.State(w.state))
	}
	span.end(count)
	if err := sp.buildSuccIndex(ctx); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *Space) workers() int { return sp.opts.workers() }

// Mode reports the resolved space-representation tier this space was
// built on (never SpaceAuto).
func (sp *Space) Mode() SpaceMode { return sp.mode }

// Symmetry returns the symmetry group a quotient space was reduced by,
// nil for full and spill-without-quotient spaces.
func (sp *Space) Symmetry() *Symmetry {
	if sp.quot == nil {
		return nil
	}
	return sp.quot.sym
}

// QuotientStats returns the representative count and the quotient
// bookkeeping footprint in bytes (0, 0 outside quotient mode).
func (sp *Space) QuotientStats() (reps, bytes int64) {
	if sp.quot == nil {
		return 0, 0
	}
	return int64(len(sp.quot.reps)), sp.quot.bytes()
}

// SpillStats returns the bytes materialized into mmap'd CSR segment files
// and the bytes written through frontier spools (0, 0 outside spill mode).
func (sp *Space) SpillStats() (segBytes, spooledBytes int64) {
	if sp.arena == nil {
		return 0, 0
	}
	return sp.arena.segmentBytes(), sp.arena.spooled.Load()
}

// Close releases the space's disk-backed resources (spill segment files
// and any leftover frontier runs). It is a no-op for in-RAM spaces, safe
// to call multiple times, and must be the last use of the space — the
// CSR views die with the mappings. Derived stage spaces never own the
// arena, so closing them is always a no-op.
func (sp *Space) Close() error {
	if sp.arena == nil || !sp.ownsArena {
		return nil
	}
	return sp.arena.close()
}

// region reports whether state i lies in the convergence region T∧¬S.
func (sp *Space) region(i int64) bool { return sp.inT.get(i) && !sp.inS.get(i) }

// stateInto decodes state index i into st: a straight mixed-radix decode
// in full/spill mode, an indirection through the representative list in
// quotient mode. Every pass kernel routes decoding through here.
func (sp *Space) stateInto(i int64, st *program.State) {
	if sp.quot != nil {
		i = sp.quot.reps[i]
	}
	sp.P.Schema.StateInto(i, st)
}

// indexOf encodes st back to a state index: a straight mixed-radix encode
// in full/spill mode; in quotient mode st is canonicalized in place and
// resolved through the quotient map. Callers therefore only pass scratch
// states or freshly produced successors — never a state another kernel
// still reads raw.
func (sp *Space) indexOf(st *program.State) int64 {
	if sp.quot == nil {
		return sp.P.Schema.Index(st)
	}
	return sp.quot.indexOf(sp.P.Schema, st)
}

// weightOf returns the number of full-product states index i stands for:
// 1 outside quotient mode, the orbit size within it.
func (sp *Space) weightOf(i int64) int64 {
	if sp.quot == nil {
		return 1
	}
	return int64(sp.quot.weights[i])
}

// weightedCount counts the full-space states behind b's set bits.
func (sp *Space) weightedCount(b bitset) int64 {
	if sp.quot == nil {
		return b.count()
	}
	var sum int64
	for w, word := range b {
		base := int64(w) * 64
		for word != 0 {
			sum += int64(sp.quot.weights[base+int64(bits.TrailingZeros64(word))])
			word &= word - 1
		}
	}
	return sum
}

// weightedCountAndNot counts the full-space states behind b∧¬not.
func (sp *Space) weightedCountAndNot(b, not bitset) int64 {
	if sp.quot == nil {
		return countAndNot(b, not)
	}
	var sum int64
	for w := range b {
		word := b[w] &^ not[w]
		base := int64(w) * 64
		for word != 0 {
			sum += int64(sp.quot.weights[base+int64(bits.TrailingZeros64(word))])
			word &= word - 1
		}
	}
	return sum
}

// weightedLen sums the weights of a frontier's states.
func (sp *Space) weightedLen(idxs []int64) int64 {
	if sp.quot == nil {
		return int64(len(idxs))
	}
	var sum int64
	for _, i := range idxs {
		sum += int64(sp.quot.weights[i])
	}
	return sum
}

// spillFrontiers reports whether BFS/wave frontiers should overflow to
// disk (spill mode with the CSR materialized).
func (sp *Space) spillFrontiers() bool { return sp.arena != nil && sp.idx != nil }

// newStates allocates one scratch state per worker.
func (sp *Space) newStates() []*program.State {
	scr := make([]*program.State, sp.workers())
	for i := range scr {
		scr[i] = sp.P.Schema.NewState()
	}
	return scr
}

// statePair is a worker's scratch pair: st holds the decoded current
// state, tmp the successor produced by ApplyInto.
type statePair struct{ st, tmp *program.State }

func (sp *Space) newStatePairs() []statePair {
	scr := make([]statePair, sp.workers())
	for i := range scr {
		scr[i] = statePair{st: sp.P.Schema.NewState(), tmp: sp.P.Schema.NewState()}
	}
	return scr
}

// evalPred evaluates pred at every state in parallel, returning its
// membership bitset. Constant-true predicates (including nil) short-cut to
// a full bitset without touching the space.
func (sp *Space) evalPred(ctx context.Context, pred *program.Predicate) (bitset, error) {
	bits := newBitset(sp.Count)
	if pred.IsConstTrue() {
		fillBitset(bits, sp.Count)
		return bits, nil
	}
	scr := sp.newStates()
	err := parallelRange(ctx, sp.workers(), sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		st := scr[worker]
		for i := lo; i < hi; i++ {
			sp.stateInto(i, st)
			if pred.Eval(st) {
				bits.set(i)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return bits, nil
}

// fillBitset sets the first n bits (leaving the tail of the last word
// clear so population counts stay exact).
func fillBitset(b bitset, n int64) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if rem := uint(n & 63); rem != 0 {
		b[len(b)-1] = (uint64(1) << rem) - 1
	}
}

// bitsFor returns the membership bitset of pred, reusing the space's own
// S/T bitsets when pred is one of them.
func (sp *Space) bitsFor(ctx context.Context, pred *program.Predicate) (bitset, error) {
	switch pred {
	case sp.S:
		return sp.inS, nil
	case sp.T:
		return sp.inT, nil
	}
	return sp.evalPred(ctx, pred)
}

// derived builds a stage space over the same program and transition graph
// with substituted membership bitsets — the convergence-stair and leads-to
// passes re-target S and T without re-enumerating anything. The succIndex
// is shared by pointer, so a reverse index built by any stage is reused by
// every later pass of the same Check; quotient and arena are shared
// without ownership.
func (sp *Space) derived(S, T *program.Predicate, inS, inT bitset) *Space {
	return &Space{
		P: sp.P, S: S, T: T, Count: sp.Count, FullCount: sp.FullCount,
		opts: sp.opts, mode: sp.mode, nA: sp.nA, idx: sp.idx,
		quot: sp.quot, arena: sp.arena,
		inS: inS, inT: inT,
	}
}

// InS reports whether state index i satisfies the invariant.
func (sp *Space) InS(i int64) bool { return sp.inS.get(i) }

// InT reports whether state index i satisfies the fault-span.
func (sp *Space) InT(i int64) bool { return sp.inT.get(i) }

// CountS returns the number of states satisfying S (orbit-weighted in
// quotient mode, so it equals the full space's |S| exactly).
func (sp *Space) CountS() int64 { return sp.weightedCount(sp.inS) }

// CountT returns the number of states satisfying T (orbit-weighted).
func (sp *Space) CountT() int64 { return sp.weightedCount(sp.inT) }

// State materializes the state with index i (the orbit representative in
// quotient mode).
func (sp *Space) State(i int64) *program.State {
	if sp.quot != nil {
		i = sp.quot.reps[i]
	}
	return sp.P.Schema.StateAt(i)
}

// successors appends the indices of all one-step successors of state index
// i under the given actions, reusing buf. Actions whose body leaves the
// state unchanged still contribute a (self-loop) successor. It is the
// allocation-tolerant form used by the sequential fallback passes; the
// sharded passes read the successor table directly.
func (sp *Space) successors(i int64, actions []*program.Action, buf []int64) []int64 {
	st := sp.State(i)
	buf = buf[:0]
	for _, a := range actions {
		if !a.Guard(st) {
			continue
		}
		next := a.Apply(st)
		buf = append(buf, sp.indexOf(next))
	}
	return buf
}

// ClosureViolation describes one step that escapes a predicate.
type ClosureViolation struct {
	Pred   *program.Predicate
	State  *program.State
	Action *program.Action
	Next   *program.State
}

// Error renders the violation.
func (v *ClosureViolation) Error() string {
	return fmt.Sprintf("closure of %q violated: action %q maps %s to %s",
		v.Pred.Name, v.Action.Name, v.State, v.Next)
}

// CheckClosed verifies that pred is closed in the program restricted to the
// region where `within` holds (paper Section 2: "a state predicate R of p
// is closed iff each action of p preserves R"). A nil `within` means the
// whole space. It returns nil when closed, or a ClosureViolation.
func (sp *Space) CheckClosed(pred, within *program.Predicate) *ClosureViolation {
	v, _ := sp.CheckClosedContext(context.Background(), pred, within)
	return v
}

// CheckClosedContext is CheckClosed with cancellation: the edge scan is
// sharded across the space's workers and the reported violation is the one
// at the lowest state index, independent of worker count.
func (sp *Space) CheckClosedContext(ctx context.Context, pred, within *program.Predicate) (*ClosureViolation, error) {
	if pred.IsConstTrue() {
		return nil, nil // true is closed in every program
	}
	span := startPass(sp.opts, PassClosure, sp.Count)
	predBits, err := sp.bitsFor(ctx, pred)
	if err != nil {
		return nil, err
	}
	var withinBits bitset
	if within != nil && !within.IsConstTrue() {
		if withinBits, err = sp.bitsFor(ctx, within); err != nil {
			return nil, err
		}
	}
	w := newWitness()
	var scr []statePair
	if sp.idx == nil {
		scr = sp.newStatePairs()
	}
	err = parallelRange(ctx, sp.workers(), sp.Count, sp.opts.Progress, func(worker int, lo, hi int64) {
		for i := lo; i < hi; i++ {
			if !predBits.get(i) || (withinBits != nil && !withinBits.get(i)) {
				continue
			}
			if sp.idx != nil {
				// The witness payload is the violating edge's rank among
				// i's enabled actions; actionAt recovers the action below.
				for k, j := range sp.idx.out(i) {
					if !predBits.get(int64(j)) {
						w.offer(i, int64(k))
						break
					}
				}
				continue
			}
			st, tmp := scr[worker].st, scr[worker].tmp
			sp.stateInto(i, st)
			for k, a := range sp.P.Actions {
				if !a.Guard(st) {
					continue
				}
				a.ApplyInto(st, tmp)
				if !predBits.get(sp.indexOf(tmp)) {
					w.offer(i, int64(k))
					break
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	span.end(sp.Count)
	if !w.found() {
		return nil, nil
	}
	st := sp.State(w.state)
	a := sp.P.Actions[w.extra]
	if sp.idx != nil {
		a = sp.actionAt(w.state, w.extra)
	}
	return &ClosureViolation{Pred: pred, State: st, Action: a, Next: a.Apply(st)}, nil
}

// CheckClosure verifies the paper's closure requirement for the candidate
// triple: both S and T closed in p. It returns the first violation found.
func (sp *Space) CheckClosure() *ClosureViolation {
	v, _ := sp.CheckClosureContext(context.Background())
	return v
}

// CheckClosureContext is CheckClosure with cancellation.
func (sp *Space) CheckClosureContext(ctx context.Context) (*ClosureViolation, error) {
	if v, err := sp.CheckClosedContext(ctx, sp.T, nil); v != nil || err != nil {
		return v, err
	}
	return sp.CheckClosedContext(ctx, sp.S, nil)
}
