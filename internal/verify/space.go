// Package verify is an explicit-state model checker for guarded-command
// programs. It decides, exactly, the two requirements of the paper's
// definition of fault-tolerance (Section 3):
//
//	Closure:     both S and T are closed in p.
//	Convergence: every computation of p that starts at any state where T
//	             holds reaches a state where S holds.
//
// Convergence is decided under two daemons: the arbitrary (unfair) central
// daemon, and the weakly fair daemon the paper's computation model assumes
// (Section 2). The paper's concluding remark that "the fairness requirement
// on program computations is often unnecessary" is checkable by comparing
// the two.
//
// The checker enumerates the full finite state space, so it applies to
// paper-sized instances; internal/sim covers large instances statistically.
package verify

import (
	"fmt"

	"nonmask/internal/program"
)

// DefaultMaxStates bounds full-space enumeration. 1<<22 states with the
// checker's per-state bookkeeping costs tens of megabytes.
const DefaultMaxStates = int64(1) << 22

// Options configures the checker.
type Options struct {
	// MaxStates caps the size of the enumerated state space.
	// Zero means DefaultMaxStates.
	MaxStates int64
}

func (o Options) maxStates() int64 {
	if o.MaxStates <= 0 {
		return DefaultMaxStates
	}
	return o.MaxStates
}

// Space is a fully enumerated state space of one program, with membership
// bitmaps for the invariant S and fault-span T. It underlies all checks and
// the adversarial daemon's exact distance metric.
type Space struct {
	P     *program.Program
	S     *program.Predicate
	T     *program.Predicate
	Count int64

	inS, inT []bool
}

// NewSpace enumerates the program's state space and evaluates S and T at
// every state. It fails if the space exceeds opts.MaxStates.
func NewSpace(p *program.Program, S, T *program.Predicate, opts Options) (*Space, error) {
	count, ok := p.Schema.StateCount()
	if !ok || count > opts.maxStates() {
		return nil, fmt.Errorf("verify: state space of %q too large (%d states, limit %d)",
			p.Name, count, opts.maxStates())
	}
	sp := &Space{
		P:     p,
		S:     S,
		T:     T,
		Count: count,
		inS:   make([]bool, count),
		inT:   make([]bool, count),
	}
	for i := int64(0); i < count; i++ {
		st := p.Schema.StateAt(i)
		sp.inS[i] = S.Holds(st)
		sp.inT[i] = T.Holds(st)
		if sp.inS[i] && !sp.inT[i] {
			return nil, fmt.Errorf("verify: S does not imply T at state %s", st)
		}
	}
	return sp, nil
}

// InS reports whether state index i satisfies the invariant.
func (sp *Space) InS(i int64) bool { return sp.inS[i] }

// InT reports whether state index i satisfies the fault-span.
func (sp *Space) InT(i int64) bool { return sp.inT[i] }

// CountS returns the number of states satisfying S.
func (sp *Space) CountS() int64 { return countTrue(sp.inS) }

// CountT returns the number of states satisfying T.
func (sp *Space) CountT() int64 { return countTrue(sp.inT) }

func countTrue(bs []bool) int64 {
	var n int64
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// State materializes the state with index i.
func (sp *Space) State(i int64) *program.State { return sp.P.Schema.StateAt(i) }

// successors appends the indices of all one-step successors of state index
// i under the given actions, reusing buf. Actions whose body leaves the
// state unchanged still contribute a (self-loop) successor.
func (sp *Space) successors(i int64, actions []*program.Action, buf []int64) []int64 {
	st := sp.P.Schema.StateAt(i)
	buf = buf[:0]
	for _, a := range actions {
		if !a.Guard(st) {
			continue
		}
		next := a.Apply(st)
		buf = append(buf, sp.P.Schema.Index(next))
	}
	return buf
}

// ClosureViolation describes one step that escapes a predicate.
type ClosureViolation struct {
	Pred   *program.Predicate
	State  *program.State
	Action *program.Action
	Next   *program.State
}

// Error renders the violation.
func (v *ClosureViolation) Error() string {
	return fmt.Sprintf("closure of %q violated: action %q maps %s to %s",
		v.Pred.Name, v.Action.Name, v.State, v.Next)
}

// CheckClosed verifies that pred is closed in the program restricted to the
// region where `within` holds (paper Section 2: "a state predicate R of p
// is closed iff each action of p preserves R"). A nil `within` means the
// whole space. It returns nil when closed, or a ClosureViolation.
func (sp *Space) CheckClosed(pred, within *program.Predicate) *ClosureViolation {
	for i := int64(0); i < sp.Count; i++ {
		st := sp.P.Schema.StateAt(i)
		if !pred.Holds(st) || !within.Holds(st) {
			continue
		}
		for _, a := range sp.P.Actions {
			if !a.Guard(st) {
				continue
			}
			next := a.Apply(st)
			if !pred.Holds(next) {
				return &ClosureViolation{Pred: pred, State: st, Action: a, Next: next}
			}
		}
	}
	return nil
}

// CheckClosure verifies the paper's closure requirement for the candidate
// triple: both S and T closed in p. It returns the first violation found.
func (sp *Space) CheckClosure() *ClosureViolation {
	if v := sp.CheckClosed(sp.T, nil); v != nil {
		return v
	}
	return sp.CheckClosed(sp.S, nil)
}
