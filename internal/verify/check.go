package verify

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nonmask/internal/obs"
	"nonmask/internal/program"
)

// Report bundles everything Check decides about a candidate triple
// (program, invariant S, fault-span T): the paper's closure and
// convergence requirements under both daemons, plus the Section 3
// masking/nonmasking classification.
type Report struct {
	// Options records the effective configuration the check ran with.
	Options Options
	// Space is the enumerated state space, available for follow-up passes
	// (LeadsTo, CheckStair, CheckVariant, WorstDistances) without paying
	// enumeration again.
	Space *Space
	// Span is the computed fault-span result when WithFaults was given,
	// nil otherwise.
	Span *SpanResult
	// Closure is the first closure violation of S or T, nil when both are
	// closed.
	Closure *ClosureViolation
	// Unfair is the convergence verdict under the arbitrary daemon.
	Unfair *ConvergenceResult
	// Fair is the convergence verdict under the weakly fair daemon. It is
	// computed only when the arbitrary daemon fails (the paper's Section 8
	// remark: fairness is often unnecessary), so it is nil when Unfair
	// converges.
	Fair *ConvergenceResult
	// Classification is Masking when S = T semantically, Nonmasking when
	// faults can drive the program strictly outside S.
	Classification Classification
	// Metrics is the quantitative tolerance analysis (distance profile,
	// worst/expected stabilization time, per-constraint recovery costs),
	// present only when WithMetrics was given.
	Metrics *ToleranceMetrics
	// Passes records one span per verifier pass the check ran, in
	// completion order: the exact state counts and wall time of
	// enumeration, successor-table build, closure scans and convergence
	// fixpoints. Always populated (collection costs a few time.Now calls);
	// WithTracer additionally streams the same spans live.
	Passes []obs.PassStat
	// Elapsed is the wall-clock time the whole check took.
	Elapsed time.Duration

	// collector keeps receiving spans from passes run on Space after
	// Check returns (stairs, leads-to, variants); PassStats folds them in.
	collector *obs.Collector
}

// PassStats refreshes and returns the span history, including passes run
// on the report's Space after Check returned (CheckStair, LeadsTo,
// CheckVariant, WorstDistances all keep recording into the same
// collector).
func (r *Report) PassStats() []obs.PassStat {
	if r.collector != nil {
		r.Passes = r.collector.Passes()
	}
	return r.Passes
}

// Converges reports whether convergence holds under the weakest daemon
// that was needed: the arbitrary daemon if possible, else the weakly fair
// one.
func (r *Report) Converges() bool {
	return r.Unfair.Converges || (r.Fair != nil && r.Fair.Converges)
}

// Tolerant reports whether the program satisfies the paper's definition of
// fault-tolerance for the checked S and T: closure of both predicates and
// convergence under the (weakly fair) daemon.
func (r *Report) Tolerant() bool {
	return r.Closure == nil && r.Converges()
}

// Summary renders a multi-line human-readable verdict.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "space: %d states, |S| = %d, |T| = %d (%s)\n",
		r.Space.Count, r.Unfair.StatesS, r.Unfair.StatesT, r.Classification)
	if r.Span != nil {
		fmt.Fprintf(&b, "fault-span: %d of %d states\n", r.Span.States, r.Span.Total)
	}
	if r.Closure != nil {
		fmt.Fprintf(&b, "closure: %s\n", r.Closure.Error())
	} else {
		b.WriteString("closure: S and T closed\n")
	}
	fmt.Fprintf(&b, "convergence: %s\n", r.Unfair.Summary())
	if r.Fair != nil {
		fmt.Fprintf(&b, "convergence: %s\n", r.Fair.Summary())
	}
	if r.Tolerant() {
		b.WriteString("verdict: tolerant")
	} else {
		b.WriteString("verdict: NOT tolerant")
	}
	return b.String()
}

// Check is the package's unified entry point: it enumerates the state
// space of p, verifies the closure of S and T, decides convergence under
// the arbitrary daemon and — only if that fails — under the weakly fair
// daemon, and classifies the tolerance as masking or nonmasking. It
// replaces the scattered NewSpace + CheckClosure + CheckConvergence +
// CheckFairConvergence call sequence (and, with WithFaults, the separate
// FaultSpan pre-pass) of earlier versions.
//
// T may be nil, meaning true — the fault-span of every stabilizing
// program. Every pass is sharded across WithWorkers goroutines (default
// runtime.NumCPU()) and polls ctx; WithDeadline adds a wall-clock bound on
// top. Verdicts and witnesses are identical for every worker count.
func Check(ctx context.Context, p *program.Program, S, T *program.Predicate, options ...Option) (*Report, error) {
	opts, extras := buildOptions(options)
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Record the effective (defaults-resolved) configuration on the report.
	opts.MaxStates = opts.maxStates()
	opts.Workers = opts.workers()
	opts.Strategy = opts.strategy()
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	start := time.Now()

	// Every pass records its span into the collector; the user's tracer
	// (if any) sees the same events live. The report keeps the caller's
	// options, not the teed ones.
	rep := &Report{Options: opts, collector: &obs.Collector{}}
	runOpts := opts
	runOpts.Tracer = obs.Tee(rep.collector, opts.Tracer)
	if extras.faults != nil {
		span, err := FaultSpanContext(ctx, p, extras.faults, S, runOpts)
		if err != nil {
			return nil, err
		}
		rep.Span = span
		T = span.Span
	}
	if T == nil {
		T = program.True()
	}
	sp, err := NewSpaceContext(ctx, p, S, T, runOpts)
	if err != nil {
		return nil, err
	}
	rep.Space = sp
	rep.Classification = sp.Classify()
	if rep.Closure, err = sp.CheckClosureContext(ctx); err != nil {
		return nil, err
	}
	if rep.Unfair, err = sp.CheckConvergenceContext(ctx); err != nil {
		return nil, err
	}
	if !rep.Unfair.Converges {
		if rep.Fair, err = sp.CheckFairConvergenceContext(ctx); err != nil {
			return nil, err
		}
	}
	if opts.Metrics {
		if rep.Metrics, err = sp.MetricsContext(ctx, extras.constraints); err != nil {
			return nil, err
		}
	}
	if segBytes, spooled := sp.SpillStats(); segBytes > 0 || spooled > 0 {
		// Summary span of the check's disk traffic: Bytes is the resident
		// segment footprint, SpilledBytes the total written (segments plus
		// frontier runs).
		span := startPass(runOpts, PassSpill, 0)
		span.addSpilled(segBytes + spooled)
		span.endSized(sp.Count, 0, segBytes)
	}
	rep.Passes = rep.collector.Passes()
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// Close releases the disk-backed resources of the report's space (spill
// segment files); a no-op for in-RAM spaces. Call it when no follow-up
// passes will run on Report.Space — after Close the space's CSR views are
// invalid.
func (r *Report) Close() error {
	if r.Space == nil {
		return nil
	}
	return r.Space.Close()
}
